(** Pluggable effectful file I/O for the persistence layer.

    {!Persist} and {!Wal} perform all file effects — writes, flushes,
    fsyncs, renames, truncations — through a {!t} value instead of calling
    the OS directly.  Two backends ship with the substrate:

    - {!unix}: the real filesystem, with durable [fsync] on files and (best
      effort) on their containing directories;
    - {!Mem}: an in-memory filesystem with {e fault injection} — it can
      crash after any byte prefix or operation count, tear the write in
      flight, and fail writes transiently — used by the crash-point
      harness in [test/test_crash.ml] to prove recovery correct at every
      possible crash point.

    The interface is a record of closures rather than a functor so backends
    can be chosen per call site at runtime ([Wal.attach ~storage:...]). *)

type writer = {
  write : string -> unit;
      (** Append the bytes.  May raise {!Errors.Io_error} (transient, fully
          retryable: a failed write lands nothing) or {!Crash}. *)
  flush : unit -> unit;  (** Push application buffers to the OS. *)
  fsync : unit -> unit;  (** Flush, then force the bytes to stable storage. *)
  close : unit -> unit;  (** Idempotent; never raises. *)
}

type t = {
  name : string;  (** backend label, for diagnostics *)
  exists : string -> bool;
  size : string -> int;  (** file size in bytes; [0] when missing *)
  read_file : string -> string;
      (** Whole contents. @raise Sys_error when missing. *)
  open_writer : append:bool -> string -> writer;
      (** [append:false] truncates/creates. *)
  rename : string -> string -> unit;  (** Atomic replace. *)
  unlink : string -> unit;  (** Missing file is not an error. *)
  truncate : string -> int -> unit;
  fsync_dir : string -> unit;
      (** Fsync the directory containing [path], making a prior
          create/rename durable.  Best effort on backends where
          directories cannot be synced. *)
}

exception Crash
(** Raised by the {!Mem} backend when an injected crash point is reached.
    Everything not yet durable at that instant is lost (see {!Mem}); the
    test harness then "reboots" and runs recovery against what survived. *)

val unix : t
(** The real filesystem. *)

val with_retries : ?attempts:int -> ?backoff:(int -> unit) -> (unit -> 'a) -> 'a
(** Run [f], retrying on {!Errors.Io_error} up to [attempts] times
    (default 5) with [backoff attempt] between tries (default: exponential
    sleep starting at 2 ms).  Other exceptions — including {!Crash} —
    propagate immediately. *)

(** CRC-32 (IEEE 802.3, the zlib polynomial) over strings; guards WAL v2
    batch payloads against torn writes and bit rot. *)
module Crc32 : sig
  val string : ?crc:int32 -> string -> int32
  (** [string s] is the checksum of [s]; pass [?crc] to continue a running
      checksum. *)

  val to_hex : int32 -> string
  (** Fixed-width lowercase hex, e.g. ["0a1b2c3d"]. *)
end

(** The fault-injecting in-memory backend. *)
module Mem : sig
  type fs

  val create : ?cache:bool -> unit -> fs
  (** A fresh empty filesystem.  With [~cache:false] (default,
      "writethrough") every write lands durably at once and an injected
      crash can only tear the write in flight — the model for torn-tail
      enumeration.  With [~cache:true] writes sit in a volatile page cache
      until [fsync] promotes them, and a crash drops everything volatile —
      the model for proving fsync placement. *)

  val storage : fs -> t

  val contents : fs -> string -> string
  (** Live view (durable + volatile), as a running process would read it. *)

  val durable : fs -> string -> string
  (** Post-crash view: only what survived.  [""] when missing. *)

  val set_file : fs -> string -> string -> unit
  (** Install durable contents directly (building crash-point fixtures). *)

  val files : fs -> string list  (** Existing file names, sorted. *)

  val reboot : fs -> fs
  (** A fresh, fault-free filesystem holding only the durable view of every
      file — the disk as the next process boot sees it. *)

  (** {2 Fault injection} *)

  val crash_after_bytes : fs -> int -> unit
  (** Let [n] more written bytes reach the store, tear the write in flight,
      then raise {!Crash} from that and every subsequent operation. *)

  val crash_after_ops : fs -> int -> unit
  (** Let [n] more mutating operations (write / fsync / rename / unlink /
      truncate / create / fsync_dir) complete, then raise {!Crash} from the
      next one on. *)

  val crash_after_reads : fs -> int -> unit
  (** Let [n] more {!type-t.read_file} calls complete, then raise {!Crash}
      from every subsequent read until {!clear_faults}.  Recovery
      ({!Wal.recover}) is a read-only pipeline, so this is the fault that
      interrupts it mid-delta-chain; write-side state is untouched. *)

  val fail_writes : fs -> int -> unit
  (** Make the next [n] writes raise {!Errors.Io_error} without landing any
      bytes (a transient fault; {!with_retries} recovers). *)

  val clear_faults : fs -> unit

  (** {2 Observability} *)

  val fsyncs : fs -> int  (** fsync calls (files only). *)

  val ops : fs -> int  (** mutating operations performed *)
end
