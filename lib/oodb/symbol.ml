(* Global string interning for attribute, method and class names.

   Symbols are small dense ints handed out in first-intern order, so derived
   structures (slot resolution tables, routing keys) can compare and hash
   plain integers on the hot path instead of hashing strings.  The table is
   process-wide and append-only: a symbol, once interned, never changes its
   id, which is what lets pre-resolved slot handles and routing keys stay
   valid across schema evolution (the *mapping* from symbol to slot moves,
   the symbol itself does not).  Ids are process-local — nothing persistent
   ever stores one; on-disk formats keep the string names.

   Domain-safety: readers are lock-free — they [Atomic.get] an immutable
   snapshot and probe it with plain reads.  The snapshot's hashtable is
   frozen (copied-on-write by the next intern, never mutated after publish)
   and its reverse array is only ever written at indexes >= the published
   [count], which no reader holding that snapshot will touch; the atomic
   publish orders those writes before any reader that observes the new
   count, so there are no torn reads.  Writers serialise on a mutex; the
   copy-on-write cost is fine because interning happens at class-definition
   and stage-registration time, not on hot paths. *)

type t = int

type snap = {
  tbl : (string, int) Hashtbl.t; (* frozen once published *)
  rev : string array; (* indexes >= count are unpublished scratch *)
  count : int;
}

let current =
  Atomic.make { tbl = Hashtbl.create 256; rev = Array.make 256 ""; count = 0 }

let lock = Mutex.create ()

let intern s =
  let snap = Atomic.get current in
  match Hashtbl.find_opt snap.tbl s with
  | Some id -> id
  | None ->
    Mutex.protect lock @@ fun () ->
    (* re-probe under the lock: another domain may have won the race *)
    let snap = Atomic.get current in
    (match Hashtbl.find_opt snap.tbl s with
    | Some id -> id
    | None ->
      let id = snap.count in
      let tbl = Hashtbl.copy snap.tbl in
      Hashtbl.replace tbl s id;
      let rev =
        if id < Array.length snap.rev then snap.rev
        else begin
          let bigger = Array.make (2 * Array.length snap.rev) "" in
          Array.blit snap.rev 0 bigger 0 (Array.length snap.rev);
          bigger
        end
      in
      rev.(id) <- s;
      Atomic.set current { tbl; rev; count = id + 1 };
      id)

let find s = Hashtbl.find_opt (Atomic.get current).tbl s

let name id =
  let snap = Atomic.get current in
  if id < 0 || id >= snap.count then invalid_arg "Symbol.name: unknown symbol"
  else snap.rev.(id)

let count () = (Atomic.get current).count
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let pp ppf id = Format.fprintf ppf "%s#%d" (name id) id
