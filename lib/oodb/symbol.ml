(* Global string interning for attribute, method and class names.

   Symbols are small dense ints handed out in first-intern order, so derived
   structures (slot resolution tables, routing keys) can compare and hash
   plain integers on the hot path instead of hashing strings.  The table is
   process-wide and append-only: a symbol, once interned, never changes its
   id, which is what lets pre-resolved slot handles and routing keys stay
   valid across schema evolution (the *mapping* from symbol to slot moves,
   the symbol itself does not).  Ids are process-local — nothing persistent
   ever stores one; on-disk formats keep the string names. *)

type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 256
let rev : string array ref = ref (Array.make 256 "")
let next = ref 0

let intern s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    Hashtbl.replace table s id;
    if id >= Array.length !rev then begin
      let bigger = Array.make (2 * Array.length !rev) "" in
      Array.blit !rev 0 bigger 0 (Array.length !rev);
      rev := bigger
    end;
    !rev.(id) <- s;
    id

let find s = Hashtbl.find_opt table s

let name id =
  if id < 0 || id >= !next then invalid_arg "Symbol.name: unknown symbol"
  else !rev.(id)

let count () = !next
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let pp ppf id = Format.fprintf ppf "%s#%d" (name id) id
