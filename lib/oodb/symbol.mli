(** Global string interning for attribute, method and class names.

    A symbol is a small dense integer assigned at first intern and stable
    for the life of the process.  Hot paths (slot resolution, event routing,
    detector leaf matching) compare symbols instead of hashing strings.
    Symbol ids are process-local: on-disk formats (snapshots, WALs) always
    keep the string names and re-intern on load.

    Domain-safe: lookups ({!find}, {!name}, hot-path probes inside
    {!intern}) are lock-free reads of an immutable snapshot; interning a
    genuinely new string takes a process-wide mutex and publishes a fresh
    snapshot.  Ids stay process-wide — shards on different domains must
    agree on them, since slot layouts and routing keys derived from ids
    cross shard boundaries inside forwarded occurrences. *)

type t = int

val intern : string -> t
(** Return the symbol for [s], allocating a fresh id on first sight. *)

val find : string -> t option
(** The symbol for [s], if it has ever been interned. *)

val name : t -> string
(** The string a symbol stands for.
    @raise Invalid_argument on an id never handed out. *)

val count : unit -> int
(** Number of symbols interned so far (ids are [0 .. count () - 1]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
