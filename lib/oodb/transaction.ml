open Types

let in_progress db = db.txns <> []
let depth db = List.length db.txns

let outermost_id db =
  match List.rev db.txns with [] -> None | t :: _ -> Some t.txn_id

let journal db e = match db.on_journal with Some f -> f e | None -> ()

let begin_ db =
  let txn_id = db.next_txn_id in
  db.next_txn_id <- txn_id + 1;
  db.txns <- { log = []; deferred = []; detached = []; txn_id } :: db.txns;
  journal db J_begin

let current db =
  match db.txns with
  | [] -> raise (Errors.Transaction_error "no transaction in progress")
  | t :: _ -> t

let log_undo db u =
  match db.txns with [] -> () | t :: _ -> t.log <- u :: t.log

let add_deferred db f =
  let t = current db in
  t.deferred <- f :: t.deferred

let add_detached db f =
  let t = current db in
  t.detached <- f :: t.detached

let on_abort db f = log_undo db (U_runtime f)

let apply_undo db = function
  | U_set_attr (oid, name, old) ->
    let o = Heap.find_obj_any db oid in
    ignore (Heap.raw_set_attr db o name old)
  | U_created oid ->
    let o = Heap.find_obj_any db oid in
    Heap.remove_obj db o
  | U_deleted o ->
    o.alive <- true;
    Heap.insert_obj db o
  | U_consumers (oid, old) ->
    let o = Heap.find_obj_any db oid in
    o.consumers <- old;
    Heap.mark_dirty db o
  | U_class_consumers (cls, old) ->
    Hashtbl.replace db.class_consumers cls old;
    (* rollback is a subscription change too: stale routing caches must see it *)
    db.class_sub_gen <- db.class_sub_gen + 1
  | U_runtime f -> f ()

let abort db =
  let t = current db in
  List.iter (apply_undo db) t.log;
  db.txns <- List.tl db.txns;
  db.stats.txns_aborted <- db.stats.txns_aborted + 1;
  journal db J_abort

(* Drain the deferred queue FIFO; deferred work may enqueue more. *)
let run_deferred t =
  let rec loop () =
    match List.rev t.deferred with
    | [] -> ()
    | fs ->
      t.deferred <- [];
      List.iter (fun f -> f ()) fs;
      loop ()
  in
  loop ()

let commit db =
  let t = current db in
  match db.txns with
  | [] -> assert false
  | [ _ ] ->
    (* Outermost: deferred work runs inside the transaction so a Rule_abort
       in a deferred action rolls everything back. *)
    (try run_deferred t
     with e ->
       abort db;
       raise e);
    let detached = List.rev t.detached in
    db.txns <- [];
    db.stats.txns_committed <- db.stats.txns_committed + 1;
    journal db (J_mutation (M_clock db.now));
    journal db J_commit;
    List.iter (fun f -> f ()) detached
  | t :: parent :: _ ->
    (* Inner commit: effects and queued work flow into the parent. *)
    parent.log <- t.log @ parent.log;
    parent.deferred <- t.deferred @ parent.deferred;
    parent.detached <- t.detached @ parent.detached;
    db.txns <- List.tl db.txns;
    db.stats.txns_committed <- db.stats.txns_committed + 1;
    journal db J_commit_inner

let atomically db f =
  begin_ db;
  match f () with
  | v -> (
    try
      commit db;
      Ok v
    with e -> Error e)
  | exception e ->
    abort db;
    Error e
