(** Nested transactions with undo logging.

    Rules and events are subject to the same transaction semantics as other
    objects (paper §2, §3.4): creating, deleting or mutating them inside a
    transaction is undone on abort.  A rule action may abort the triggering
    transaction by raising {!Errors.Rule_abort} (the paper's Figure 9).

    Transactions nest: committing an inner transaction merges its undo log
    (and any queued deferred/detached work) into the parent; aborting an
    inner transaction rolls back only its own effects.  Mutations performed
    outside any transaction are auto-committed and cannot be undone.

    The commit point of the outermost transaction is where deferred rules
    run (still inside the transaction, so they can abort it); detached work
    runs immediately after a successful commit. *)

val begin_ : Types.db -> unit

val commit : Types.db -> unit
(** Commit the innermost open transaction.  For the outermost transaction
    this first drains the deferred queue (FIFO; deferred work may enqueue
    more deferred work) and, after the commit takes effect, runs detached
    work.  If deferred work raises, the transaction is aborted and the
    exception re-raised.
    @raise Errors.Transaction_error when no transaction is open. *)

val abort : Types.db -> unit
(** Roll back the innermost open transaction.
    @raise Errors.Transaction_error when no transaction is open. *)

val in_progress : Types.db -> bool
val depth : Types.db -> int

val outermost_id : Types.db -> int option
(** Identifier of the outermost open transaction, if any.  The rule
    scheduler uses it to detect that a transaction it queued work for has
    ended (committed or aborted) without the queue draining. *)

val atomically : Types.db -> (unit -> 'a) -> ('a, exn) result
(** [atomically db f] runs [f] inside a fresh transaction, committing on
    normal return and aborting (then returning [Error e]) when [f] — or
    deferred work at commit — raises [e]. *)

(** {1 Used by [Db] and the rule scheduler} *)

val log_undo : Types.db -> Types.undo -> unit
(** Record an undo entry in the innermost transaction; no-op outside. *)

val add_deferred : Types.db -> (unit -> unit) -> unit
(** Queue work for the outermost commit point.
    @raise Errors.Transaction_error outside a transaction. *)

val add_detached : Types.db -> (unit -> unit) -> unit
(** Queue work for after the outermost commit.
    @raise Errors.Transaction_error outside a transaction. *)

val on_abort : Types.db -> (unit -> unit) -> unit
(** [on_abort db f] records [f] as an undo entry of the innermost open
    transaction: [f] runs if (and only if) that transaction — or, after an
    inner commit merges the log upward, an enclosing one — aborts.  Hooks
    interleave with ordinary undo entries newest-first, so a hook observes
    database state as of the moment it was registered.  Used by runtime
    caches that shadow persistent state (e.g. the rule scheduler's circuit
    breaker) to roll back in step with the attribute writes they mirror.
    No-op outside a transaction, where mutations are final anyway. *)
