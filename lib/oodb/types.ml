(* The mutually recursive heart of the substrate: databases, class
   definitions (whose method implementations receive the database), open
   transactions and undo records.  Higher-level modules (Schema, Transaction,
   Db, Index) each expose one facet of these types; they live together here
   because OCaml requires recursive types to be declared in one place. *)

type timestamp = int

type modifier = Before | After

(* One entry of a class's event interface: which primitive events a method
   generates when invoked (paper §3.1: "event begin", "event end",
   "event begin && end"). *)
type interface_entry = { on_begin : bool; on_end : bool }

(* A generated primitive event (paper §3.1):
   "Generated primitive event = Oid + Class + Method + Actual parameters +
    Time stamp".
   The interned [class_sym]/[meth_sym] pair rides along with the strings so
   downstream consumers (Events.Route discrimination keys, Detector leaf
   matching) compare ints on the per-event path; the strings remain the
   source of truth for printing and serialization. *)
type occurrence = {
  source : Oid.t;
  source_class : string; (* runtime class of the generating object *)
  class_sym : Symbol.t;
  meth : string;
  meth_sym : Symbol.t;
  modifier : modifier;
  params : Value.t list;
  at : timestamp;
}

(* A pre-resolved attribute handle (Db.resolve).  [sl_index] is the slot the
   attribute occupied in the layout it was resolved against; accessors
   validate it with one array read ([ly_syms.(sl_index) = sl_sym]) and fall
   back to re-resolution by name, so a handle survives schema evolution and
   works across classes thanks to the subclass prefix invariant. *)
type slot = { sl_name : string; sl_sym : Symbol.t; sl_index : int }

(* Slot-mode "attribute is not stored" marker.  Attributes can be
   legitimately absent (snapshot predating an add_attribute, undo of a
   backfill, remove_attribute mid-flight), and [Db.get_opt] must tell
   absence apart from a stored [Null] — the hashtable representation got
   that from key presence.  Compare with [==] only; the sentinel is never
   indexed, never persisted and never escapes through the public API. *)
let absent : Value.t = Value.Str "\000<absent>\000"

type method_def = { mname : string; impl : db -> Oid.t -> Value.t list -> Value.t }

and class_def = {
  cname : string;
  super : string option;
  (* These three are mutable to support runtime schema evolution
     (Evolution.add_attribute / add_method / add_event_generator). *)
  mutable attr_spec : (string * Value.t) list; (* attribute name, default *)
  methods : (string, method_def) Hashtbl.t;
  interface : (string, interface_entry) Hashtbl.t;
  mutable reactive : bool; (* passive classes skip all event machinery *)
}

and undo =
  | U_set_attr of Oid.t * string * Value.t option (* None: attr was absent *)
  | U_created of Oid.t
  | U_deleted of obj (* restore this object wholesale *)
  | U_consumers of Oid.t * Oid.t list
  | U_class_consumers of string * Oid.t list
  | U_runtime of (unit -> unit)
      (* Run on abort: lets runtime caches that shadow persistent state
         (the rule scheduler's breaker flags, dead-letter cache, pending
         queue) roll back alongside the attribute writes they mirror.
         Never serialized — the undo log is in-memory only. *)

and txn = {
  mutable log : undo list; (* newest first *)
  (* Work queued by the rule scheduler for this transaction's boundary:
     deferred rules run just before commit, detached ones just after. *)
  mutable deferred : (unit -> unit) list; (* newest first *)
  mutable detached : (unit -> unit) list;
  txn_id : int;
}

and index = { ix_class : string; mutable ix_attr : string; ix_backing : index_backing }

(* Hash indexes serve equality probes; ordered (B+-tree) indexes add range
   scans for comparison predicates. *)
and index_backing =
  | Ix_hash of (Value.t, unit Oid.Table.t) Hashtbl.t
  | Ix_ordered of Btree.t

(* The compiled slot layout of one class: attribute [i] of an instance lives
   at [slots.(i)].  Slot order is Schema.all_attrs order — root-declared
   attributes first — which makes a subclass layout a prefix-compatible
   extension of its superclass's: a slot index resolved against class C is
   valid for every instance in C's deep extent. *)
and layout = {
  ly_class : string;
  ly_class_sym : Symbol.t;
  ly_names : string array; (* slot -> attribute name *)
  ly_syms : Symbol.t array; (* slot -> interned name *)
  ly_defaults : Value.t array; (* slot -> declared default *)
  ly_by_name : (string, int) Hashtbl.t; (* name -> slot *)
  ly_by_sym : (Symbol.t, int) Hashtbl.t; (* symbol -> slot *)
  (* Per-slot covering-index lists, so the set hot path skips the ancestry
     walk + hashtable probes of Heap.covering_indexes.  Rebuilt lazily when
     the stamp trails db.index_gen. *)
  mutable ly_ix_stamp : int;
  ly_covering : index list array;
}

(* Attribute storage.  [S_slots] is the compiled representation: a flat
   value array indexed by the class layout.  [S_table] is the legacy
   name-keyed hashtable, kept selectable (Db.create ~layout:`Hashtbl) as
   the measured baseline for the E-oltp benchmark and the CI bench-smoke
   regression gate. *)
and attr_store =
  | S_slots of Value.t array
  | S_table of (string, Value.t) Hashtbl.t

and obj = {
  id : Oid.t;
  mutable cls : string;
  (* The flattened class cache, denormalized onto the instance so dispatch
     and slot access skip the class_info hashtable probe.  Evolution keeps
     it fresh (Heap.migrate_obj) when it replaces a class's info. *)
  mutable info : class_info;
  mutable store : attr_store;
  (* The paper's Reactive::consumers data member: notifiable objects that
     subscribed to this instance's events.  Stored newest-first so subscribe
     is O(1); subscription order is recovered by reversing. *)
  mutable consumers : Oid.t list;
  mutable alive : bool;
  (* Dirty-tracking epoch stamp for incremental checkpoints: when it equals
     [db.ckpt_gen] the object is already in [db.dirty], so the mutation hot
     path pays one load+compare instead of a hashtable write per set.  0 on
     freshly built objects (no epoch ever matches). *)
  mutable dirty_gen : int;
}

(* One method as seen by Db.send: implementation, effective event-interface
   entry and interned name resolved together, so dispatch costs a single
   hashtable probe. *)
and dispatch_entry = {
  de_method : method_def;
  de_iface : interface_entry option;
  de_sym : Symbol.t;
}

(* Flattened, inheritance-resolved view of a class, computed once at
   registration time so that the dispatch hot path (Db.send) does not walk
   the superclass chain per message. *)
and class_info = {
  ri_reactive : bool;
  ri_ancestry : string list; (* class first, root last *)
  ri_iface : (string, interface_entry) Hashtbl.t;
  ri_layout : layout;
  ri_dispatch : (string, dispatch_entry) Hashtbl.t;
}

(* Logical mutations, as reported to an attached journal (Wal).  These are
   pure data — no code — so a log of them can be replayed into a fresh
   database to reconstruct state (methods and rule code re-bind from the
   registered classes and the function registry, as with Persist).
   Attribute and class names are carried as strings: symbol ids are
   process-local and never reach the disk. *)
and mutation =
  | M_create of Oid.t * string * (string * Value.t) list
  | M_delete of Oid.t
  | M_set of Oid.t * string * Value.t
  | M_subscribe of Oid.t * Oid.t (* reactive, consumer *)
  | M_unsubscribe of Oid.t * Oid.t
  | M_subscribe_class of string * Oid.t
  | M_unsubscribe_class of string * Oid.t
  | M_create_index of string * string * bool (* ordered? *)
  | M_drop_index of string * string
  | M_clock of timestamp

and journal_event =
  | J_mutation of mutation
  | J_begin (* a transaction opened (any nesting level) *)
  | J_commit_inner (* an inner transaction merged into its parent *)
  | J_commit (* the outermost transaction committed *)
  | J_abort (* the innermost open transaction rolled back *)

and stats = {
  mutable sends : int; (* messages dispatched *)
  mutable events_generated : int; (* primitive occurrences raised *)
  mutable notifications : int; (* consumer deliveries *)
  mutable txns_committed : int;
  mutable txns_aborted : int;
  (* Durability counters, maintained by Wal and Persist. *)
  mutable wal_batches_replayed : int;
  mutable wal_batches_discarded : int; (* torn or corrupt batches dropped *)
  mutable wal_checksum_failures : int;
  mutable wal_fsyncs : int;
  (* Durability-path sizing and group-commit visibility (PR 6). *)
  mutable wal_bytes : int; (* current WAL file length, maintained by Wal *)
  mutable snapshot_bytes : int; (* size of the last full snapshot written *)
  mutable group_commit_batches : int; (* batches sealed by the coordinator *)
  mutable delta_checkpoints : int; (* incremental checkpoints taken *)
}

and db = {
  mutable next_oid : int;
  (* OID allocation stride, 1 for an unsharded store.  A shard member of an
     N-way pool allocates every N-th OID (next_oid ≡ shard index mod N), so
     OID spaces of sibling shards are disjoint and [oid mod N] recovers the
     owner — the shard-routing invariant.  See Db.configure_shard. *)
  mutable oid_stride : int;
  mutable now : timestamp;
  mutable next_txn_id : int;
  (* Highest WAL batch sequence number already reflected in this store's
     state.  Written into snapshots (Persist `walseq`) and consulted by
     Wal.replay, so replaying a log that predates the loaded snapshot can
     skip the batches the snapshot already contains instead of
     double-applying them (the checkpoint-crash window). *)
  mutable wal_applied_seq : int;
  (* WAL sequence number covered by the last durable snapshot artifact (base
     snapshot or delta-chain element).  The next delta checkpoint chains from
     here (`prev` header), and Wal.recover validates each chain link against
     it.  0 until a snapshot is saved or loaded. *)
  mutable snapshot_seq : int;
  (* Objects created or mutated since the last snapshot artifact, keyed by
     OID — the working set an incremental checkpoint persists.  Cleared by
     Persist.save / save_delta / load (each establishes a new baseline). *)
  dirty : unit Oid.Table.t;
  (* Objects deleted since the last snapshot artifact: a delta records them
     as explicit `del` entries so recovery removes them from the base. *)
  dirty_dead : unit Oid.Table.t;
  (* Dirty-epoch counter, bumped whenever [dirty] is cleared; see
     [obj.dirty_gen]. Starts at 1 so a fresh object's 0 stamp never matches. *)
  mutable ckpt_gen : int;
  (* Slot mode (the default) compiles objects to S_slots arrays; hashtbl
     mode preserves the legacy per-object S_table representation for
     baseline measurement. *)
  slots_mode : bool;
  objects : obj Oid.Table.t;
  classes : (string, class_def) Hashtbl.t;
  extents : (string, unit Oid.Table.t) Hashtbl.t; (* direct extent per class *)
  class_info : (string, class_info) Hashtbl.t;
  (* Consumers subscribed at the class level (class-level rules apply to all
     instances, paper §4.7).  Stored newest-first; subscription order is
     recovered by reversing (Db.class_consumers_of). *)
  class_consumers : (string, Oid.t list) Hashtbl.t;
  indexes : (string * string, index) Hashtbl.t;
  mutable txns : txn list; (* stack, innermost first *)
  (* Delivery hook installed by the rule layer: called once per (occurrence,
     subscribed consumer).  The substrate stays rule-agnostic. *)
  mutable notify : db -> consumer:Oid.t -> occurrence -> unit;
  (* Whole-occurrence routing hook (Events.Route): when set, Db.deliver hands
     each occurrence here once instead of fanning out per consumer, so the
     rule layer can consult its predicate index.  The substrate still stays
     rule-agnostic: the hook sees only the source object and the occurrence. *)
  mutable route : (db -> obj -> occurrence -> unit) option;
  (* Global taps receive *every* occurrence regardless of subscription; this
     is the centralized dispatch the ADAM baseline uses.  Newest-first. *)
  mutable taps : (db -> occurrence -> unit) list;
  (* Journal hook installed by Wal.attach; None = no journaling. *)
  mutable on_journal : (journal_event -> unit) option;
  (* Invalidation stamps for caches derived from the schema (class
     subsumption sets) and from class-level subscriptions.  Bumped on
     define_class / Evolution DDL and on (un)subscribe_class — including
     transaction rollback of the latter. *)
  mutable schema_gen : int;
  mutable class_sub_gen : int;
  (* Bumped on create_index / drop_index; layouts compare it to refresh
     their per-slot covering-index caches. *)
  mutable index_gen : int;
  (* Reusable scratch tables for Db.deliver's per-event consumer dedup; a
     pool (not a single table) because rule actions can re-enter deliver. *)
  mutable deliver_scratch : unit Oid.Table.t list;
  stats : stats;
}
