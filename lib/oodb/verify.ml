open Types

let check ?(quiescent = false) (db : Db.t) =
  let problems = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in

  if quiescent && Transaction.in_progress db then
    complain "transaction still in progress";

  (* objects vs classes and extents *)
  Oid.Table.iter
    (fun oid (o : obj) ->
      if not o.alive then complain "%s: dead object in table" (Oid.to_string oid)
      else if not (Db.has_class db o.cls) then
        complain "%s: unregistered class %s" (Oid.to_string oid) o.cls
      else begin
        (* extent membership *)
        (match List.find_opt (Oid.equal oid) (Db.extent db ~deep:false o.cls) with
        | Some _ -> ()
        | None -> complain "%s: missing from extent of %s" (Oid.to_string oid) o.cls);
        (* the denormalized info pointer must be the registered one *)
        (match Hashtbl.find_opt db.class_info o.cls with
        | Some ci when ci != o.info ->
          complain "%s: stale class_info cache" (Oid.to_string oid)
        | _ -> ());
        (* slot store must match the layout; checked before the attribute
           walk, which addresses slots through the layout *)
        let store_ok =
          match o.store with
          | S_table _ -> true
          | S_slots slots ->
            let n = Array.length o.info.ri_layout.ly_names in
            if Array.length slots = n then true
            else begin
              complain "%s: slot array has %d slots but layout has %d"
                (Oid.to_string oid) (Array.length slots) n;
              false
            end
        in
        if store_ok then begin
          (* attribute set = declared set *)
          let spec = Schema.all_attrs db o.cls in
          List.iter
            (fun (attr, _) ->
              match Heap.obj_get o attr with
              | None ->
                complain "%s: declared attribute %s missing" (Oid.to_string oid)
                  attr
              | Some _ -> ())
            spec;
          Heap.iter_attrs
            (fun attr _ ->
              if not (List.mem_assoc attr spec) then
                complain "%s: undeclared attribute %s present"
                  (Oid.to_string oid) attr)
            o
        end
      end)
    db.objects;

  (* extents point at live objects of the right class *)
  Hashtbl.iter
    (fun cls extent ->
      Oid.Table.iter
        (fun oid () ->
          match Oid.Table.find_opt db.objects oid with
          | None ->
            complain "extent %s: dangling entry %s" cls (Oid.to_string oid)
          | Some o when o.cls <> cls ->
            complain "extent %s: %s actually of class %s" cls (Oid.to_string oid)
              o.cls
          | Some _ -> ())
        extent)
    db.extents;

  (* indexes agree with the data *)
  Hashtbl.iter
    (fun (cls, attr) ix ->
      let indexed_pairs =
        match ix.ix_backing with
        | Ix_hash entries ->
          Hashtbl.fold
            (fun v bucket acc ->
              Oid.Table.fold (fun oid () acc -> (v, oid) :: acc) bucket acc)
            entries []
        | Ix_ordered tree ->
          (match Btree.check_invariants tree with
          | Ok () -> ()
          | Error msg -> complain "index %s.%s: btree invariant: %s" cls attr msg);
          let out = ref [] in
          Btree.iter tree (fun v oids ->
              List.iter (fun oid -> out := (v, oid) :: !out) oids);
          !out
      in
      (* every index entry matches the object *)
      List.iter
        (fun (v, oid) ->
          if not (Db.exists db oid) then
            complain "index %s.%s: entry for missing object %s" cls attr
              (Oid.to_string oid)
          else
            match Db.get_opt db oid attr with
            | Some actual when Value.equal actual v -> ()
            | Some actual ->
              complain "index %s.%s: %s indexed under %s but holds %s" cls attr
                (Oid.to_string oid) (Value.to_string v) (Value.to_string actual)
            | None ->
              complain "index %s.%s: %s indexed but attribute absent" cls attr
                (Oid.to_string oid))
        indexed_pairs;
      (* every matching object is indexed *)
      let indexed_oids = List.map snd indexed_pairs in
      List.iter
        (fun oid ->
          match Db.get_opt db oid attr with
          | Some _ when not (List.exists (Oid.equal oid) indexed_oids) ->
            complain "index %s.%s: live object %s not indexed" cls attr
              (Oid.to_string oid)
          | _ -> ())
        (Db.extent db ~deep:true cls))
    db.indexes;

  match List.rev !problems with [] -> Ok () | ps -> Error ps

let check_exn ?quiescent db =
  match check ?quiescent db with
  | Ok () -> ()
  | Error (p :: _) -> raise (Errors.Transaction_error ("integrity: " ^ p))
  | Error [] -> ()
