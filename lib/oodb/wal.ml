open Types

let magic_v1 = "SENTINELWAL 1"
let magic_v2 = "SENTINELWAL 2"

type version = V1 | V2

(* Group-commit window: the coordinator coalesces up to [max_batch] commits
   arriving within [max_wait_us] of the group opening into one WAL batch and
   one fsync. *)
type group_commit = { max_batch : int; max_wait_us : int }

(* WAL retention under [compact]: how much of the (already-folded-into-the-
   base) log tail survives for forensics and point-in-time inspection. *)
type retention = Keep_none | Keep_bytes of int | Keep_since_seq of int

type t = {
  wal_db : db;
  path : string;
  storage : Storage.t;
  sync : bool;
  group : group_commit option;
  mutable w : Storage.writer;
  mutable version : version;
  (* sequence number the next batch will carry; monotone across the life of
     the log, never reset by checkpoints *)
  mutable next_seq : int;
  (* one buffer per open transaction, innermost first; entries newest
     first *)
  mutable stack : string list list;
  (* the open commit group: coalesced entries (newest first) and how many
     commits they came from.  Nothing here has touched the disk yet. *)
  mutable g_entries : string list;
  mutable g_txns : int;
  mutable g_opened_us : float; (* wall-clock when the group opened *)
  mutable n_batches : int;
  mutable n_entries : int;
  mutable attached : bool;
}

let batches_written t = t.n_batches
let entries_written t = t.n_entries
let pending_commits t = t.g_txns

(* --- entry codec ----------------------------------------------------------- *)

let oid_s o = string_of_int (Oid.to_int o)

let encode_mutation = function
  | M_create (oid, cls, attrs) ->
    let attr (name, v) = name ^ "=" ^ Persist.encode_value v in
    String.concat " " ([ "c"; oid_s oid; cls ] @ List.map attr attrs)
  | M_delete oid -> "d " ^ oid_s oid
  | M_set (oid, name, v) ->
    Printf.sprintf "s %s %s %s" (oid_s oid) name (Persist.encode_value v)
  | M_subscribe (r, c) -> Printf.sprintf "+ %s %s" (oid_s r) (oid_s c)
  | M_unsubscribe (r, c) -> Printf.sprintf "- %s %s" (oid_s r) (oid_s c)
  | M_subscribe_class (cls, c) -> Printf.sprintf "c+ %s %s" cls (oid_s c)
  | M_unsubscribe_class (cls, c) -> Printf.sprintf "c- %s %s" cls (oid_s c)
  | M_create_index (cls, attr, ordered) ->
    Printf.sprintf "ix %s %s %s" cls attr (if ordered then "o" else "h")
  | M_drop_index (cls, attr) -> Printf.sprintf "dx %s %s" cls attr
  | M_clock now -> "k " ^ string_of_int now

let parse_error fmt =
  Printf.ksprintf (fun s -> raise (Errors.Parse_error s)) fmt

let parse_oid w =
  match int_of_string_opt w with
  | Some n -> Oid.of_int n
  | None -> parse_error "wal: bad oid %S" w

let decode_mutation line =
  let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  match words with
  | "c" :: oid :: cls :: attrs ->
    let attr w =
      match String.index_opt w '=' with
      | Some i ->
        ( String.sub w 0 i,
          Persist.decode_value (String.sub w (i + 1) (String.length w - i - 1)) )
      | None -> parse_error "wal: bad attribute %S" w
    in
    M_create (parse_oid oid, cls, List.map attr attrs)
  | [ "d"; oid ] -> M_delete (parse_oid oid)
  | [ "s"; oid; name; v ] -> M_set (parse_oid oid, name, Persist.decode_value v)
  | [ "+"; r; c ] -> M_subscribe (parse_oid r, parse_oid c)
  | [ "-"; r; c ] -> M_unsubscribe (parse_oid r, parse_oid c)
  | [ "c+"; cls; c ] -> M_subscribe_class (cls, parse_oid c)
  | [ "c-"; cls; c ] -> M_unsubscribe_class (cls, parse_oid c)
  | [ "ix"; cls; attr; k ] ->
    let ordered =
      match k with
      | "o" -> true
      | "h" -> false
      | other -> parse_error "wal: bad index kind %S" other
    in
    M_create_index (cls, attr, ordered)
  | [ "dx"; cls; attr ] -> M_drop_index (cls, attr)
  | [ "k"; now ] -> (
    match int_of_string_opt now with
    | Some v -> M_clock v
    | None -> parse_error "wal: bad clock %S" now)
  | _ -> parse_error "wal: bad entry %S" line

(* --- log scanning ----------------------------------------------------------
   One parser serves both replay and attach-time tail repair.  Scanning never
   raises on damage past the header: it stops at the first torn or corrupt
   batch and reports how far the log is structurally sound, so recovery can
   apply the intact prefix and attach can truncate the wreckage. *)

type batch = {
  b_seq : int; (* 0 in v1 logs *)
  b_lines : string list;
  b_end : int; (* byte offset just past this batch *)
}

type scanned = {
  s_version : version;
  s_batches : batch list; (* in file order *)
  s_valid_end : int; (* offset just past the last intact batch *)
  s_checksum_failures : int;
  s_leftover : bool; (* damaged bytes beyond [s_valid_end] *)
}

let scan data =
  let len = String.length data in
  let next_line pos =
    if pos >= len then None
    else
      match String.index_from_opt data pos '\n' with
      | None -> None (* unterminated tail *)
      | Some i -> Some (String.sub data pos (i - pos), i + 1)
  in
  match next_line 0 with
  | None -> `Torn_header (* empty, or a crash mid-header: nothing durable *)
  | Some (l, p0) when l = magic_v1 || l = magic_v2 ->
    let version = if l = magic_v2 then V2 else V1 in
    let cksum_fail = ref 0 in
    (* exactly [k] payload lines, or None on a torn tail *)
    let rec payload k q lines =
      if k = 0 then Some (List.rev lines, q)
      else
        match next_line q with
        | None -> None
        | Some (pl, q') -> payload (k - 1) q' (pl :: lines)
    in
    let rec batches acc pos last_seq =
      match next_line pos with
      | None -> (List.rev acc, pos)
      | Some ("", p) -> batches acc p last_seq
      | Some (line, p) -> (
        let stop () = (List.rev acc, pos) in
        match version with
        | V2 -> (
          match String.split_on_char ' ' line with
          | [ "B"; seq_s; count_s; crc_s ] -> (
            match (int_of_string_opt seq_s, int_of_string_opt count_s) with
            | Some seq, Some count
              when count >= 0 && seq >= 1
                   && (match last_seq with None -> true | Some l -> seq = l + 1)
              -> (
              match payload count p [] with
              | None -> stop () (* torn mid-batch *)
              | Some (lines, q) -> (
                match next_line q with
                | Some ("E", q') ->
                  let body =
                    String.concat "" (List.map (fun l -> l ^ "\n") lines)
                  in
                  if
                    String.equal crc_s
                      (Storage.Crc32.to_hex (Storage.Crc32.string body))
                  then
                    batches
                      ({ b_seq = seq; b_lines = lines; b_end = q' } :: acc)
                      q' (Some seq)
                  else begin
                    incr cksum_fail;
                    stop ()
                  end
                | _ -> stop ()))
            | _ -> stop ())
          | _ -> stop ())
        | V1 ->
          if line <> "B" then stop ()
          else
            let rec collect q lines =
              match next_line q with
              | None -> None
              | Some ("E", q') -> Some (List.rev lines, q')
              | Some (l, q') -> collect q' (l :: lines)
            in
            (match collect p [] with
            | None -> stop ()
            | Some (lines, q) ->
              batches ({ b_seq = 0; b_lines = lines; b_end = q } :: acc) q None))
    in
    let bs, valid_end = batches [] p0 None in
    `Ok
      {
        s_version = version;
        s_batches = bs;
        s_valid_end = valid_end;
        s_checksum_failures = !cksum_fail;
        s_leftover = valid_end < len;
      }
  | Some (l, _) -> parse_error "wal: bad magic %S" l

(* --- writing ----------------------------------------------------------------- *)

let count_fsync db = db.stats.wal_fsyncs <- db.stats.wal_fsyncs + 1

let st_wal_append =
  Obs.Metrics.register ~id:(Symbol.intern "wal.append") "wal.append"

let st_wal_checkpoint =
  Obs.Metrics.register ~id:(Symbol.intern "wal.checkpoint") "wal.checkpoint"

let st_wal_fsync =
  Obs.Metrics.register ~id:(Symbol.intern "wal.fsync") "wal.fsync"

let st_group_commit =
  Obs.Metrics.register ~id:(Symbol.intern "wal.group_commit") "wal.group_commit"

let st_wal_compact =
  Obs.Metrics.register ~id:(Symbol.intern "wal.compact") "wal.compact"

(* Quantity counters (Obs.Metrics.add / hit are self-gated on the metrics
   switch, so the disabled path stays one load + branch per site). *)
let st_coalesced =
  Obs.Metrics.register
    ~id:(Symbol.intern "wal.batches_coalesced")
    "wal.batches_coalesced"

let st_delta_bytes =
  Obs.Metrics.register ~id:(Symbol.intern "wal.delta_bytes") "wal.delta_bytes"

let st_compactions =
  Obs.Metrics.register ~id:(Symbol.intern "wal.compactions") "wal.compactions"

let fsync_raw t =
  t.w.Storage.fsync ();
  count_fsync t.wal_db

let fsync_writer t =
  if not !Obs.armed then fsync_raw t
  else begin
    let t0 = Obs.Metrics.enter st_wal_fsync in
    match fsync_raw t with
    | () -> Obs.Metrics.exit st_wal_fsync t0
    | exception e ->
      Obs.Metrics.exit st_wal_fsync t0;
      raise e
  end

let write_batch_raw t entries =
  if t.attached then begin
    (* entries arrive newest first *)
    let payload = Buffer.create 256 in
    let n = ref 0 in
    List.iter
      (fun e ->
        Buffer.add_string payload e;
        Buffer.add_char payload '\n';
        incr n)
      (List.rev entries);
    let body = Buffer.contents payload in
    let data =
      match t.version with
      | V2 ->
        Printf.sprintf "B %d %d %s\n%sE\n" t.next_seq !n
          (Storage.Crc32.to_hex (Storage.Crc32.string body))
          body
      | V1 -> "B\n" ^ body ^ "E\n"
    in
    (* one write per batch: a transient fault lands nothing, so the bounded
       retry cannot duplicate a partially-written batch *)
    Storage.with_retries (fun () -> t.w.Storage.write data);
    t.w.Storage.flush ();
    if t.sync then fsync_writer t;
    (* counters and the sequence move only once the batch is safely down *)
    t.n_batches <- t.n_batches + 1;
    t.n_entries <- t.n_entries + !n;
    t.wal_db.stats.wal_bytes <- t.wal_db.stats.wal_bytes + String.length data;
    if t.version = V2 then begin
      t.wal_db.wal_applied_seq <- t.next_seq;
      t.next_seq <- t.next_seq + 1
    end
  end

let write_batch t entries =
  if not !Obs.armed then write_batch_raw t entries
  else begin
    let t0 = Obs.Metrics.enter st_wal_append in
    match write_batch_raw t entries with
    | () -> Obs.Metrics.exit st_wal_append t0
    | exception e ->
      Obs.Metrics.exit st_wal_append t0;
      raise e
  end

(* --- group commit -----------------------------------------------------------
   With [~group_commit] the committed entries do not go to the disk one
   batch per transaction: they join the open group, and the whole group is
   written as one WAL batch — one sequence number, one CRC, one fsync —
   when it reaches [max_batch] commits, its window expires, or a durability
   point forces a seal ([sync], checkpoint, compact, detach).  Until then
   the group lives only in memory: a crash loses the open group wholesale
   and nothing else, so recovery still lands exactly on a batch boundary. *)

let seal_group_raw t =
  if t.g_txns > 0 then begin
    let entries = t.g_entries and txns = t.g_txns in
    t.g_entries <- [];
    t.g_txns <- 0;
    t.g_opened_us <- 0.;
    write_batch t entries;
    let st = t.wal_db.stats in
    st.group_commit_batches <- st.group_commit_batches + 1;
    (* commits beyond the first shared a batch (and an fsync) with it *)
    Obs.Metrics.add st_coalesced (txns - 1)
  end

let seal_group t =
  if t.g_txns > 0 then
    if not !Obs.armed then seal_group_raw t
    else begin
      let t0 = Obs.Metrics.enter st_group_commit in
      match seal_group_raw t with
      | () -> Obs.Metrics.exit st_group_commit t0
      | exception e ->
        Obs.Metrics.exit st_group_commit t0;
        raise e
    end

let now_us () = Unix.gettimeofday () *. 1e6

(* One committed transaction's entries (newest first) reach the log, either
   directly or through the group coordinator. *)
let commit_batch t entries =
  match t.group with
  | None -> write_batch t entries
  | Some g ->
    (* a group left open past its window seals before new commits join it *)
    if t.g_txns > 0 && now_us () -. t.g_opened_us > float_of_int g.max_wait_us
    then seal_group t;
    if t.g_txns = 0 then t.g_opened_us <- now_us ();
    t.g_entries <- entries @ t.g_entries;
    t.g_txns <- t.g_txns + 1;
    if t.g_txns >= g.max_batch then seal_group t

let on_event t event =
  if t.attached then
    match event with
    | J_begin -> t.stack <- [] :: t.stack
    | J_mutation m -> (
      let entry = encode_mutation m in
      match t.stack with
      | [] -> commit_batch t [ entry ] (* autocommit *)
      | buf :: rest -> t.stack <- (entry :: buf) :: rest)
    | J_commit_inner -> (
      match t.stack with
      | inner :: parent :: rest -> t.stack <- (inner @ parent) :: rest
      | _ -> ())
    | J_commit -> (
      match t.stack with
      | [ buf ] ->
        t.stack <- [];
        if buf <> [] then commit_batch t buf
      | _ -> ())
    | J_abort -> (
      match t.stack with [] -> () | _ :: rest -> t.stack <- rest)

(* Force everything committed so far onto the disk: seal the open group and,
   for a [sync:false] log, fsync the buffered writes. *)
let sync t =
  if not t.attached then
    raise (Errors.Transaction_error "cannot sync a detached journal");
  seal_group t;
  t.w.Storage.flush ();
  if not t.sync then fsync_writer t

(* --- attach / detach --------------------------------------------------------- *)

let init_log storage sync db path =
  let w = storage.Storage.open_writer ~append:false path in
  Storage.with_retries (fun () -> w.Storage.write (magic_v2 ^ "\n"));
  w.Storage.flush ();
  if sync then begin
    w.Storage.fsync ();
    count_fsync db
  end;
  storage.Storage.fsync_dir path;
  w

let header_bytes = String.length magic_v2 + 1

let attach ?(storage = Storage.unix) ?(sync = true) ?group_commit db path =
  if db.on_journal <> None then
    raise (Errors.Transaction_error "a journal is already attached");
  if db.txns <> [] then
    raise (Errors.Transaction_error "cannot attach a journal mid-transaction");
  (match group_commit with
  | Some g when g.max_batch < 1 || g.max_wait_us < 0 ->
    invalid_arg "Wal.attach: bad group_commit window"
  | _ -> ());
  let fresh =
    (not (storage.Storage.exists path)) || storage.Storage.size path = 0
  in
  let w, version, next_seq, bytes =
    if fresh then
      (init_log storage sync db path, V2, db.wal_applied_seq + 1, header_bytes)
    else begin
      let data = storage.Storage.read_file path in
      match scan data with
      | `Torn_header ->
        (* a crash while creating the log: no batch was ever durable, so
           reinitialize in place *)
        (init_log storage sync db path, V2, db.wal_applied_seq + 1, header_bytes)
      | `Ok s ->
        (* repair: drop the torn or corrupt tail so appended batches stay
           reachable by replay *)
        if s.s_valid_end < String.length data then
          storage.Storage.truncate path s.s_valid_end;
        let last =
          List.fold_left
            (fun acc b -> max acc b.b_seq)
            db.wal_applied_seq s.s_batches
        in
        ( storage.Storage.open_writer ~append:true path,
          s.s_version,
          last + 1,
          s.s_valid_end )
    end
  in
  let t =
    {
      wal_db = db;
      path;
      storage;
      sync;
      group = group_commit;
      w;
      version;
      next_seq;
      stack = [];
      g_entries = [];
      g_txns = 0;
      g_opened_us = 0.;
      n_batches = 0;
      n_entries = 0;
      attached = true;
    }
  in
  db.stats.wal_bytes <- bytes;
  db.on_journal <- Some (on_event t);
  t

let detach t =
  if t.attached then begin
    seal_group t;
    t.attached <- false;
    t.wal_db.on_journal <- None;
    t.w.Storage.flush ();
    if t.sync then fsync_writer t;
    t.w.Storage.close ()
  end

(* --- checkpoint --------------------------------------------------------------- *)

let delta_path snapshot k = Printf.sprintf "%s.delta-%d" snapshot k

(* The storage backend has no directory listing, so the delta chain is
   discovered by probing [<snapshot>.delta-1], [-2], ... until the first
   missing index.  Stale files past a gap (a crashed compaction's leftovers)
   are invisible to recovery and get overwritten by later checkpoints. *)
let delta_files ?(storage = Storage.unix) ~snapshot () =
  let rec go k acc =
    let p = delta_path snapshot k in
    if not (storage.Storage.exists p) then List.rev acc
    else
      match Persist.delta_header ~storage p with
      | Some (prev, seq) -> go (k + 1) ((p, prev, seq) :: acc)
      | None -> List.rev acc
  in
  go 1 []

let next_delta_index storage snapshot =
  let rec go k =
    if storage.Storage.exists (delta_path snapshot k) then go (k + 1) else k
  in
  go 1

let remove_deltas storage snapshot =
  let rec go k =
    let p = delta_path snapshot k in
    if storage.Storage.exists p then begin
      storage.Storage.unlink p;
      go (k + 1)
    end
  in
  go 1;
  storage.Storage.fsync_dir snapshot

let guard_checkpoint t op =
  if not t.attached then
    raise
      (Errors.Transaction_error (Printf.sprintf "cannot %s a detached journal" op));
  if t.wal_db.txns <> [] then
    raise
      (Errors.Transaction_error
         (Printf.sprintf "cannot %s during a transaction" op))

let checkpoint_full_raw t ~snapshot =
  (* 1. Durable snapshot.  It embeds [walseq] — the sequence number of the
     last batch this store reflects — so a crash after this point cannot
     double-apply the not-yet-rotated log: replay skips batches at or below
     the marker. *)
  Persist.save ~storage:t.storage t.wal_db snapshot;
  (* 2. Rotate the log through a temp file + atomic rename: at every crash
     point the log on disk is either the full old one or the fresh empty
     one, never a torn truncation. *)
  t.w.Storage.close ();
  let tmp = Printf.sprintf "%s.rotate.%d" t.path (Unix.getpid ()) in
  let w = t.storage.Storage.open_writer ~append:false tmp in
  Storage.with_retries (fun () -> w.Storage.write (magic_v2 ^ "\n"));
  w.Storage.fsync ();
  count_fsync t.wal_db;
  w.Storage.close ();
  t.storage.Storage.rename tmp t.path;
  t.storage.Storage.fsync_dir t.path;
  t.w <- t.storage.Storage.open_writer ~append:true t.path;
  (* rotation upgrades a v1-era log; the sequence keeps counting *)
  t.version <- V2;
  t.wal_db.stats.wal_bytes <- header_bytes;
  (* the new base covers everything any old delta held *)
  remove_deltas t.storage snapshot

let checkpoint_raw ?(mode = `Full) t ~snapshot =
  guard_checkpoint t "checkpoint";
  (* the snapshot must cover the open group, or its commits would be both
     outside the log's retained tail and outside the base *)
  seal_group t;
  match mode with
  | `Full -> checkpoint_full_raw t ~snapshot
  | `Delta ->
    let db = t.wal_db in
    let no_base =
      (not (t.storage.Storage.exists snapshot))
      || t.storage.Storage.size snapshot = 0
      (* snapshot_seq = 0: this store never saved or loaded a snapshot, so
         nothing on disk is a valid chain base for its dirty set *)
      || db.snapshot_seq = 0
    in
    if no_base then checkpoint_full_raw t ~snapshot
    else if db.wal_applied_seq = db.snapshot_seq then
      () (* nothing committed since the last chain element *)
    else begin
      let k = next_delta_index t.storage snapshot in
      let bytes = Persist.save_delta ~storage:t.storage db (delta_path snapshot k) in
      db.stats.delta_checkpoints <- db.stats.delta_checkpoints + 1;
      Obs.Metrics.add st_delta_bytes bytes
      (* the WAL is not rotated: deltas stay cheap because retention is
         compaction's job *)
    end

let checkpoint ?mode t ~snapshot =
  if not !Obs.armed then checkpoint_raw ?mode t ~snapshot
  else begin
    let t0 = Obs.Metrics.enter st_wal_checkpoint in
    match checkpoint_raw ?mode t ~snapshot with
    | () -> Obs.Metrics.exit st_wal_checkpoint t0
    | exception e ->
      Obs.Metrics.exit st_wal_checkpoint t0;
      raise e
  end

(* --- compaction --------------------------------------------------------------- *)

(* Fold the whole store — base, deltas, WAL — into a fresh base snapshot and
   truncate the log under [retention].  Every crash point leaves a
   recoverable disk: the new base appears atomically; until the log rewrite
   renames, the full old log coexists with it (replay skips what the base
   covers); stale deltas fail their chain check and are ignored. *)
let compact_raw ?(retention = Keep_none) t ~snapshot =
  guard_checkpoint t "compact";
  seal_group t;
  Persist.save ~storage:t.storage t.wal_db snapshot;
  t.w.Storage.close ();
  let data = t.storage.Storage.read_file t.path in
  let kept =
    match (t.version, scan data) with
    | V2, `Ok s ->
      let header_end =
        match String.index_opt data '\n' with Some i -> i + 1 | None -> 0
      in
      (* byte range of each batch, in file order *)
      let ranges =
        List.rev
          (fst
             (List.fold_left
                (fun (acc, start) b -> ((b, start, b.b_end) :: acc, b.b_end))
                ([], header_end) s.s_batches))
      in
      let wanted =
        match retention with
        | Keep_none -> []
        | Keep_since_seq seq -> List.filter (fun (b, _, _) -> b.b_seq >= seq) ranges
        | Keep_bytes budget ->
          (* the largest suffix of whole batches fitting the byte budget *)
          let rec suffix acc total = function
            | [] -> acc
            | ((_, start, stop) as r) :: older ->
              let total = total + (stop - start) in
              if total > budget then acc else suffix (r :: acc) total older
          in
          suffix [] 0 (List.rev ranges)
      in
      (* byte-exact copies keep the recorded CRCs valid *)
      List.map (fun (_, start, stop) -> String.sub data start (stop - start)) wanted
    | _ ->
      (* a v1-era log has no sequence numbers to retain against; the new
         base covers it all, so the rewritten log starts empty *)
      []
  in
  let body = String.concat "" ((magic_v2 ^ "\n") :: kept) in
  let tmp = Printf.sprintf "%s.compact.%d" t.path (Unix.getpid ()) in
  let w = t.storage.Storage.open_writer ~append:false tmp in
  Storage.with_retries (fun () -> w.Storage.write body);
  w.Storage.fsync ();
  count_fsync t.wal_db;
  w.Storage.close ();
  t.storage.Storage.rename tmp t.path;
  t.storage.Storage.fsync_dir t.path;
  t.w <- t.storage.Storage.open_writer ~append:true t.path;
  t.version <- V2;
  t.wal_db.stats.wal_bytes <- String.length body;
  (* the deltas are folded into the new base *)
  remove_deltas t.storage snapshot;
  Obs.Metrics.hit st_compactions

let compact ?retention t ~snapshot =
  if not !Obs.armed then compact_raw ?retention t ~snapshot
  else begin
    let t0 = Obs.Metrics.enter st_wal_compact in
    match compact_raw ?retention t ~snapshot with
    | () -> Obs.Metrics.exit st_wal_compact t0
    | exception e ->
      Obs.Metrics.exit st_wal_compact t0;
      raise e
  end

(* --- replay ------------------------------------------------------------------- *)

let apply_mutation db m =
  match m with
  | M_create (oid, cls, attrs) ->
    (* force the allocator so replay reproduces the logged OID (aborted
       transactions may have burned identifiers in the original run) *)
    let saved = db.next_oid in
    db.next_oid <- Oid.to_int oid;
    let got = Db.new_object db ~attrs cls in
    if not (Oid.equal got oid) then
      parse_error "wal: replay allocated %s, expected %s" (Oid.to_string got)
        (Oid.to_string oid);
    (* never rewind the allocator below its pre-replay high-water mark, or a
       fresh allocation after recovery could collide with a live OID *)
    if saved > db.next_oid then db.next_oid <- saved
  | M_delete oid -> Db.delete_object db oid
  | M_set (oid, name, v) -> Db.set db oid name v
  | M_subscribe (r, c) -> Db.subscribe db ~reactive:r ~consumer:c
  | M_unsubscribe (r, c) -> Db.unsubscribe db ~reactive:r ~consumer:c
  | M_subscribe_class (cls, c) -> Db.subscribe_class db ~cls ~consumer:c
  | M_unsubscribe_class (cls, c) -> Db.unsubscribe_class db ~cls ~consumer:c
  | M_create_index (cls, attr, ordered) ->
    Db.create_index db ~kind:(if ordered then `Ordered else `Hash) ~cls ~attr ()
  | M_drop_index (cls, attr) -> Db.drop_index db ~cls ~attr
  | M_clock now -> Db.advance_clock db now

let replay ?(storage = Storage.unix) db path =
  if not (storage.Storage.exists path) then 0
  else begin
    let data = storage.Storage.read_file path in
    if String.length data = 0 then 0
    else
      match scan data with
      | `Torn_header -> 0
      | `Ok s ->
        let saved_journal = db.on_journal in
        db.on_journal <- None;
        Fun.protect
          ~finally:(fun () -> db.on_journal <- saved_journal)
          (fun () ->
            let applied = ref 0 and discarded = ref 0 in
            let stopped = ref false in
            List.iter
              (fun b ->
                if !stopped then incr discarded
                else if s.s_version = V2 && b.b_seq <= db.wal_applied_seq then
                  (* the loaded snapshot already contains this batch *)
                  ()
                else
                  match List.map decode_mutation b.b_lines with
                  | exception Errors.Parse_error _ ->
                    (* v1 logs have no checksum, so entry-level damage is
                       only caught here; stop cleanly at the first bad
                       batch instead of half-applying it *)
                    stopped := true;
                    incr discarded
                  | ms ->
                    (* apply the whole batch atomically; decoding happened
                       up front so damage cannot strand a half-applied
                       batch *)
                    List.iter (apply_mutation db) ms;
                    incr applied;
                    if s.s_version = V2 then db.wal_applied_seq <- b.b_seq)
              s.s_batches;
            if s.s_leftover then incr discarded;
            db.stats.wal_batches_replayed <-
              db.stats.wal_batches_replayed + !applied;
            db.stats.wal_batches_discarded <-
              db.stats.wal_batches_discarded + !discarded;
            db.stats.wal_checksum_failures <-
              db.stats.wal_checksum_failures + s.s_checksum_failures;
            !applied)
  end

(* --- full recovery ------------------------------------------------------------ *)

type recovery = {
  r_snapshot_loaded : bool;
  r_deltas_applied : int;
  r_batches_replayed : int;
}

(* Base snapshot, then the delta chain, then the WAL tail — the complete
   recovery pipeline for a store checkpointed incrementally.  The chain
   stops at the first missing or stale delta; that is always safe, because
   the WAL retains every batch past the base until a compaction folds them
   in (and compaction removes the deltas it folded).  [db] must be fresh
   (classes registered, no objects), as with {!Persist.load}. *)
let recover ?(storage = Storage.unix) db ~snapshot ~wal =
  let loaded =
    if storage.Storage.exists snapshot && storage.Storage.size snapshot > 0 then begin
      Persist.load ~storage db snapshot;
      true
    end
    else false
  in
  let deltas = ref 0 in
  (if loaded then
     try
       let rec go k =
         let p = delta_path snapshot k in
         if storage.Storage.exists p then
           match Persist.apply_delta ~storage db p with
           | `Applied ->
             incr deltas;
             go (k + 1)
           | `Stale -> ()
       in
       go 1
     with Errors.Parse_error _ ->
       (* a damaged delta body ends the chain; the WAL tail below re-applies
          everything past the last intact element *)
       ());
  let batches = replay ~storage db wal in
  {
    r_snapshot_loaded = loaded;
    r_deltas_applied = !deltas;
    r_batches_replayed = batches;
  }
