(** Write-ahead logging and crash recovery.

    {!Persist} snapshots the whole store; this module complements it with an
    append-only log of logical mutations (object creation/deletion,
    attribute writes, subscriptions, index DDL) grouped into transaction
    batches.

    {2 Log format (v2)}

    A log starts with the magic line ["SENTINELWAL 2"].  Each batch is

    {v B <seq> <count> <crc32>\n <count entry lines> E\n v}

    where [seq] is a monotonically increasing sequence number (strictly
    [+1] per batch, never reset — not even by {!checkpoint}), [count] the
    number of entry lines and [crc32] the checksum of the entry payload.
    Logs written by the previous version (["SENTINELWAL 1"], bare [B]/[E]
    framing) remain readable: {!attach} and {!replay} accept both.

    {2 Durability contract}

    With the default [~sync:true], a batch is fsynced before the journal's
    counters advance, so once a transaction's commit returns, its batch
    survives any crash.  Recovery stops cleanly at the first torn {e or
    corrupt} batch — a crash mid-append, a bit flip, or a foreign tail can
    lose at most uncommitted work, never raise out of {!replay}.
    {!checkpoint} is crash-atomic end to end: the snapshot goes down via
    temp file + fsync + atomic rename + directory fsync and embeds the
    sequence number of the last logged batch ([walseq]), so a crash
    between snapshot and log rotation cannot double-apply batches — replay
    skips everything the snapshot already contains.

    {2 Group commit}

    With [~group_commit:{max_batch; max_wait_us}] the coordinator coalesces
    commits arriving within the window into a single WAL batch — one
    sequence number, one CRC, one fsync — sealing the open group when it
    reaches [max_batch] commits, when its window has expired by the time
    the next commit arrives, or at any durability point ({!sync},
    {!checkpoint}, {!compact}, {!detach}).  This shifts the durability
    point from every commit to every {e seal}: a crash loses at most the
    open (unsealed) group, wholesale — groups are atomic, so recovery still
    lands exactly on a batch boundary, never between coalesced commits.

    {2 Incremental checkpoints and compaction}

    [checkpoint ~mode:`Delta] persists only the objects dirtied since the
    last snapshot artifact as a [<snapshot>.delta-<k>] file, chained to its
    predecessor by WAL sequence number ([prev]/[walseq] headers) and
    written with the same tmp+fsync+rename+dir-fsync discipline.  Delta
    checkpoints do {e not} rotate the WAL; {!compact} folds base + deltas +
    log into a fresh base snapshot, deletes the delta chain and truncates
    the log under a {!retention} policy.  {!recover} replays base + deltas
    + WAL tail; a stale or missing chain element simply ends the chain,
    which is always safe because the WAL retains every batch past the base
    until a compaction folds it in.

    The log records data only — method bodies and rule code re-bind from
    registered classes and the rule layer's registry, exactly as with
    {!Persist}.  Replay reproduces OIDs and the logical clock, so
    occurrence timestamps and rule subscriptions stay coherent.

    Typical lifecycle:
    {[
      let wal =
        Wal.attach ~group_commit:{ max_batch = 32; max_wait_us = 2000 }
          db "app.wal"
      in
      ... transactions ...
      Wal.checkpoint wal ~mode:`Delta ~snapshot:"app.db";
      ... more transactions ...
      Wal.compact wal ~retention:(Keep_bytes 1_000_000) ~snapshot:"app.db";
      ... crash ...
      (* recovery: *)
      let db = Db.create () in
      register_classes db;
      let r = Wal.recover db ~snapshot:"app.db" ~wal:"app.wal" in
      ...
    ]} *)

type t

type group_commit = { max_batch : int; max_wait_us : int }
(** Commit-coalescing window: a group seals after [max_batch] commits, or —
    checked when the next commit arrives — once [max_wait_us] microseconds
    have passed since the group opened.  [{max_batch = 1; _}] degenerates
    to one batch (and one fsync) per commit. *)

type retention = Keep_none | Keep_bytes of int | Keep_since_seq of int
(** How much log tail {!compact} retains after folding it into the base:
    nothing, the largest suffix of whole batches within a byte budget, or
    every batch with a sequence number at or above a floor.  Retained
    batches are already covered by the new base — replay skips them — so
    retention trades disk for forensics and inspection, never correctness. *)

val attach :
  ?storage:Storage.t -> ?sync:bool -> ?group_commit:group_commit -> Db.t ->
  string -> t
(** Install journaling on the database, appending to (or creating) the log
    file through [storage] (default {!Storage.unix}).  Mutations outside
    any transaction are logged as single-entry batches; transactional
    mutations buffer until the outermost commit and are dropped on abort
    (inner aborts drop only their own entries).

    Attaching to an existing log validates the magic line and repairs the
    tail: a torn or corrupt final batch is truncated away so later appends
    stay reachable by replay.  With [~sync:false] batches are flushed but
    not fsynced — faster, but a crash may lose recently committed work.
    [group_commit] (default off) enables the commit coordinator.
    @raise Errors.Parse_error when the file exists, is non-empty and does
    not start with a known magic line.
    @raise Errors.Transaction_error when a journal is already attached or a
    transaction is open.
    @raise Invalid_argument on a non-positive [max_batch] or negative
    [max_wait_us]. *)

val detach : t -> unit
(** Seal the open group, flush, (when [sync]) fsync, close and uninstall.
    Idempotent. *)

val sync : t -> unit
(** Force durability now: seal the open commit group and, for a
    [~sync:false] journal, fsync the buffered writes.  After [sync] returns
    every commit made so far survives any crash.
    @raise Errors.Transaction_error on a detached journal. *)

val pending_commits : t -> int
(** Commits waiting in the open (not yet durable) group; 0 without
    [group_commit] or right after a seal. *)

val checkpoint : ?mode:[ `Full | `Delta ] -> t -> snapshot:string -> unit
(** Seal the open group, then checkpoint.  [`Full] (default) saves a
    {!Persist} snapshot, rotates the log and deletes any delta chain, each
    step crash-atomic: the snapshot records [walseq] before the old log is
    replaced through a temp file + rename, so whichever set of files a
    crash leaves behind recovers to exactly the checkpointed state (no lost
    batch, no batch applied twice).  The sequence numbering continues
    across the rotation.

    [`Delta] persists only the dirty set as the next [<snapshot>.delta-<k>]
    chain element and leaves the log alone — cost proportional to the work
    done since the last checkpoint, not to the store.  Falls back to a full
    checkpoint when no base snapshot exists (or none this store chains
    from); does nothing when no batch was committed since the last chain
    element.
    @raise Errors.Transaction_error on a detached journal or during a
    transaction. *)

val compact : ?retention:retention -> t -> snapshot:string -> unit
(** Fold base + deltas + log into a fresh base snapshot, delete the delta
    chain and truncate the log under [retention] (default {!Keep_none}).
    Crash-atomic at every step: the new base appears by atomic rename;
    until the log rewrite renames, the full old log coexists with it
    (replay skips what the base covers); deltas orphaned by a crash fail
    their chain check and are ignored by {!recover}.
    @raise Errors.Transaction_error on a detached journal or during a
    transaction. *)

val delta_files :
  ?storage:Storage.t -> snapshot:string -> unit -> (string * int * int) list
(** The on-disk delta chain for [snapshot], in chain order:
    [(path, prev, walseq)] per element, stopping at the first missing or
    unreadable file. *)

val batches_written : t -> int
(** Batches durably written by this journal — counted only after the batch
    has been flushed (and fsynced, when [sync]).  With [group_commit] a
    sealed group counts as one batch. *)

val entries_written : t -> int

val replay : ?storage:Storage.t -> Db.t -> string -> int
(** Apply the committed batches from the log to [db]; returns how many were
    applied.  Batches already contained in a loaded snapshot (sequence
    number at or below the snapshot's [walseq]) are skipped.  Replay stops
    cleanly at the first torn or corrupt batch — bad checksum, broken
    framing, an undecodable entry — discarding it and everything after it;
    corruption never raises.  A missing file counts as an empty log.
    Recovery counters (batches replayed/discarded, checksum failures) land
    in {!Db.stats}.
    @raise Errors.No_such_class when the log references unregistered
    classes. *)

type recovery = {
  r_snapshot_loaded : bool;
  r_deltas_applied : int;
  r_batches_replayed : int;
}

val recover : ?storage:Storage.t -> Db.t -> snapshot:string -> wal:string -> recovery
(** Full recovery pipeline: load the base snapshot (when present), apply
    the delta chain in order — stopping at the first missing or stale
    element, which the WAL tail then covers — and replay the log.  [db]
    must be fresh (classes registered, no objects), as with
    {!Persist.load}. *)
