(** Write-ahead logging and crash recovery.

    {!Persist} snapshots the whole store; this module complements it with an
    append-only log of logical mutations (object creation/deletion,
    attribute writes, subscriptions, index DDL) grouped into transaction
    batches.

    {2 Log format (v2)}

    A log starts with the magic line ["SENTINELWAL 2"].  Each batch is

    {v B <seq> <count> <crc32>\n <count entry lines> E\n v}

    where [seq] is a monotonically increasing sequence number (strictly
    [+1] per batch, never reset — not even by {!checkpoint}), [count] the
    number of entry lines and [crc32] the checksum of the entry payload.
    Logs written by the previous version (["SENTINELWAL 1"], bare [B]/[E]
    framing) remain readable: {!attach} and {!replay} accept both.

    {2 Durability contract}

    With the default [~sync:true], a batch is fsynced before the journal's
    counters advance, so once a transaction's commit returns, its batch
    survives any crash.  Recovery stops cleanly at the first torn {e or
    corrupt} batch — a crash mid-append, a bit flip, or a foreign tail can
    lose at most uncommitted work, never raise out of {!replay}.
    {!checkpoint} is crash-atomic end to end: the snapshot goes down via
    temp file + fsync + atomic rename + directory fsync and embeds the
    sequence number of the last logged batch ([walseq]), so a crash
    between snapshot and log rotation cannot double-apply batches — replay
    skips everything the snapshot already contains.

    The log records data only — method bodies and rule code re-bind from
    registered classes and the rule layer's registry, exactly as with
    {!Persist}.  Replay reproduces OIDs and the logical clock, so
    occurrence timestamps and rule subscriptions stay coherent.

    Typical lifecycle:
    {[
      let wal = Wal.attach db "app.wal" in
      ... transactions ...
      (* snapshot embedding walseq, then atomic log rotation: *)
      Wal.checkpoint wal ~snapshot:"app.db";
      ... crash ...
      (* recovery: *)
      let db = Db.create () in
      register_classes db;
      if Sys.file_exists "app.db" then Persist.load db "app.db";
      (* replay applies only batches with seq > the snapshot's walseq,
         stopping cleanly at the first torn or corrupt batch: *)
      let applied = Wal.replay db "app.wal" in
      ...
    ]} *)

type t

val attach : ?storage:Storage.t -> ?sync:bool -> Db.t -> string -> t
(** Install journaling on the database, appending to (or creating) the log
    file through [storage] (default {!Storage.unix}).  Mutations outside
    any transaction are logged as single-entry batches; transactional
    mutations buffer until the outermost commit and are dropped on abort
    (inner aborts drop only their own entries).

    Attaching to an existing log validates the magic line and repairs the
    tail: a torn or corrupt final batch is truncated away so later appends
    stay reachable by replay.  With [~sync:false] batches are flushed but
    not fsynced — faster, but a crash may lose recently committed work.
    @raise Errors.Parse_error when the file exists, is non-empty and does
    not start with a known magic line.
    @raise Errors.Transaction_error when a journal is already attached or a
    transaction is open. *)

val detach : t -> unit
(** Flush, (when [sync]) fsync, close and uninstall.  Idempotent. *)

val checkpoint : t -> snapshot:string -> unit
(** Save a {!Persist} snapshot and rotate the log, each step crash-atomic:
    the snapshot records [walseq] before the old log is replaced through a
    temp file + rename, so whichever pair of files a crash leaves behind
    recovers to exactly the checkpointed state (no lost batch, no batch
    applied twice).  The sequence numbering continues across the rotation.
    @raise Errors.Transaction_error on a detached journal. *)

val batches_written : t -> int
(** Batches durably written by this journal — counted only after the batch
    has been flushed (and fsynced, when [sync]). *)

val entries_written : t -> int

val replay : ?storage:Storage.t -> Db.t -> string -> int
(** Apply the committed batches from the log to [db]; returns how many were
    applied.  Batches already contained in a loaded snapshot (sequence
    number at or below the snapshot's [walseq]) are skipped.  Replay stops
    cleanly at the first torn or corrupt batch — bad checksum, broken
    framing, an undecodable entry — discarding it and everything after it;
    corruption never raises.  A missing file counts as an empty log.
    Recovery counters (batches replayed/discarded, checksum failures) land
    in {!Db.stats}.
    @raise Errors.No_such_class when the log references unregistered
    classes. *)
