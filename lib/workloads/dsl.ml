module Db = Oodb.Db
module Value = Oodb.Value
module Errors = Oodb.Errors

let one_arg meth = function
  | [ v ] -> v
  | args -> Errors.type_error "%s expects 1 argument, got %d" meth (List.length args)

(* Each accessor closure memoizes a resolved slot handle for its attribute:
   the first invocation resolves against the receiver's class, subsequent
   ones go straight to the compiled slot.  The handle self-validates against
   each receiver's layout (falling back to by-name resolution), so one
   memoized handle is safe across subclasses, schema evolution and even
   databases. *)
let memo_slot attr =
  let slot = ref None in
  fun db self ->
    match !slot with
    | Some s -> s
    | None ->
      let s = Db.resolve db (Db.class_of db self) attr in
      slot := Some s;
      s

let setter attr =
  let resolve = memo_slot attr in
  fun db self args ->
    Db.slot_set db self (resolve db self) (one_arg attr args);
    Value.Null

let getter attr =
  let resolve = memo_slot attr in
  fun db self _args -> Db.slot_get db self (resolve db self)

let adder attr =
  let resolve = memo_slot attr in
  fun db self args ->
    let delta = Value.to_float (one_arg attr args) in
    let s = resolve db self in
    let current = Value.to_float (Db.slot_get db self s) in
    Db.slot_set db self s (Value.Float (current +. delta));
    Value.Null

let apply_ops db ops =
  List.iter (fun (oid, meth, args) -> ignore (Db.send db oid meth args)) ops
