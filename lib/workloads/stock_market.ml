module Db = Oodb.Db
module Value = Oodb.Value
module Errors = Oodb.Errors
module Schema = Oodb.Schema

let stock_class = "stock"
let financial_info_class = "financial_info"
let portfolio_class = "portfolio"

let set_value_impl db self args =
  match args with
  | [ value; change ] ->
    Db.set db self "value" value;
    Db.set db self "change" change;
    Value.Null
  | _ -> Errors.type_error "set_value expects (value, change)"

let purchase_impl db self args =
  match args with
  | [ Value.Obj stock; Value.Int qty ] ->
    let price = Value.to_float (Db.get db stock "price") in
    let cash = Value.to_float (Db.get db self "cash") in
    let shares = Value.to_int (Db.get db self "shares") in
    Db.set db self "cash" (Value.Float (cash -. (price *. float_of_int qty)));
    Db.set db self "shares" (Value.Int (shares + qty));
    Value.Null
  | _ -> Errors.type_error "purchase expects (stock, quantity)"

let install db =
  if not (Db.has_class db stock_class) then begin
    Db.define_class db
      (Schema.define stock_class
         ~attrs:[ ("symbol", Value.Str ""); ("price", Value.Float 100.) ]
         ~methods:
           [ ("set_price", Dsl.setter "price"); ("get_price", Dsl.getter "price") ]
         ~events:[ ("set_price", Schema.On_end) ]);
    Db.define_class db
      (Schema.define financial_info_class
         ~attrs:
           [
             ("name", Value.Str "");
             ("value", Value.Float 3000.);
             ("change", Value.Float 0.);
           ]
         ~methods:
           [ ("set_value", set_value_impl); ("get_value", Dsl.getter "value") ]
         ~events:[ ("set_value", Schema.On_end) ]);
    Db.define_class db
      (Schema.define portfolio_class
         ~attrs:
           [
             ("owner", Value.Str "");
             ("cash", Value.Float 100_000.);
             ("shares", Value.Int 0);
           ]
         ~methods:[ ("purchase", purchase_impl) ])
  end

type market = {
  stocks : Oodb.Oid.t array;
  indexes : Oodb.Oid.t array;
  portfolios : Oodb.Oid.t array;
}

let populate db rng ~stocks ~indexes ~portfolios =
  let mk_stock i =
    Db.new_object db stock_class
      ~attrs:
        [
          ("symbol", Value.Str (Printf.sprintf "STK%d" i));
          ("price", Value.Float (20. +. Prng.float rng 160.));
        ]
  in
  let mk_index i =
    Db.new_object db financial_info_class
      ~attrs:[ ("name", Value.Str (Printf.sprintf "IDX%d" i)) ]
  in
  let mk_portfolio i =
    Db.new_object db portfolio_class
      ~attrs:[ ("owner", Value.Str (Printf.sprintf "owner%d" i)) ]
  in
  {
    stocks = Array.init stocks mk_stock;
    indexes = Array.init indexes mk_index;
    portfolios = Array.init portfolios mk_portfolio;
  }

let tick rng market ~tickers =
  if Array.length market.indexes = 0 || Prng.bool rng 0.8 then
    let stock = market.stocks.(Prng.int rng tickers) in
    (stock, "set_price", [ Value.Float (20. +. Prng.float rng 160.) ])
  else
    let index = Prng.choice rng market.indexes in
    ( index,
      "set_value",
      [
        Value.Float (2000. +. Prng.float rng 2000.);
        Value.Float (Prng.float rng 10. -. 5.);
      ] )

let ticks rng market ~n =
  List.init n (fun _ -> tick rng market ~tickers:(Array.length market.stocks))

let tick_batches rng market ~tickers ~rate ~batches =
  if rate < 1 then invalid_arg "Stock_market.tick_batches: rate must be >= 1";
  let tickers = max 1 (min tickers (Array.length market.stocks)) in
  List.init batches (fun _ ->
      List.init rate (fun _ -> tick rng market ~tickers))
