(** The paper's §2.1 portfolio-management scenario: Stock, Portfolio and
    FinancialInfo classes and the inter-object Purchase rule

    {v WHEN IBM!SetPrice And DowJones!SetValue
       IF   IBM!GetPrice < $80 and DowJones!Change < 3.4%
       THEN Parker!PurchaseIBMStock v} *)

val stock_class : string
(** ["stock"]: attrs [symbol], [price]; reactive [set_price] (eom). *)

val financial_info_class : string
(** ["financial_info"]: attrs [name], [value], [change]; reactive
    [set_value] (eom) taking (value, percent-change). *)

val portfolio_class : string
(** ["portfolio"]: attrs [owner], [cash], [shares]; passive [purchase]
    taking (stock-oid, quantity) — it debits cash by quantity × the stock's
    current price and increments [shares]. *)

val install : Oodb.Db.t -> unit

type market = {
  stocks : Oodb.Oid.t array;
  indexes : Oodb.Oid.t array;
  portfolios : Oodb.Oid.t array;
}

val populate :
  Oodb.Db.t -> Prng.t -> stocks:int -> indexes:int -> portfolios:int -> market

val ticks :
  Prng.t -> market -> n:int -> (Oodb.Oid.t * string * Oodb.Value.t list) list
(** A stream of [n] market events: ~80% stock [set_price] (prices drawn in
    [\[20, 180)]), ~20% index [set_value] (value in [\[2000, 4000)], change
    in [\[-5, +5)] percent). *)

val tick_batches :
  Prng.t ->
  market ->
  tickers:int ->
  rate:int ->
  batches:int ->
  (Oodb.Oid.t * string * Oodb.Value.t list) list list
(** A rate-controlled feed: [batches] consecutive arrival windows of [rate]
    events each, drawn from the first [tickers] stocks (clamped to the
    market; the index mix is as in {!ticks}).  The generator is the shared
    driver for the E-ingest and E-cep experiments: same [(seed, tickers,
    rate)] — same event stream, whatever the consumer's batch size, so
    batched and per-event ingestion measure the identical workload.
    @raise Invalid_argument when [rate < 1]. *)
