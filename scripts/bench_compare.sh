#!/usr/bin/env bash
# bench_compare.sh [GATES]... BASELINE_DIR FRESH_DIR BENCH.json...
#
# Compare the listed bench JSON files between a baseline directory (the
# committed copies, snapshotted before the suite ran) and a fresh
# directory (where the benches just wrote), and emit ONE merged markdown
# table for $GITHUB_STEP_SUMMARY.  Every numeric leaf is flattened to a
# "file.path value" pair with the file's basename (minus .json) as the
# leading path segment, so gates can address metrics across files:
# BENCH_oltp.shards.0.send_events_per_sec, BENCH_net.rows.3.events_per_sec.
#
# A file listed here is a claim that the suite refreshed it.  A committed
# baseline whose fresh copy is missing — or byte-identical, which means
# the bench never actually ran — fails the comparison: a silently skipped
# bench must not read as a green gate.  A fresh file with no baseline is
# fine (a brand-new bench has nothing to compare against yet).
#
# Gates (repeatable, in any order before the directories):
#   --fail-below PATH_REGEX MIN_RATIO
#       exit 1 if any metric whose flattened (file-prefixed) path matches
#       PATH_REGEX has fresh/baseline below MIN_RATIO.  Use generous
#       floors — this is a catastrophic-regression catch, not a
#       benchmark; absolute numbers swing by runner.
#   --fail-ratio-below NUM_PATH DEN_PATH MIN
#       exit 1 if fresh[NUM_PATH] / fresh[DEN_PATH] is below MIN.  Both
#       are exact file-prefixed paths within the fresh files; both sides
#       ran on the same box in the same run, so the floor can be tight.
#       A missing path skips the gate.
set -euo pipefail

gate_regexes=()
gate_floors=()
ratio_nums=()
ratio_dens=()
ratio_floors=()
while true; do
  case "${1:-}" in
  --fail-below)
    gate_regexes+=("$2")
    gate_floors+=("$3")
    shift 3
    ;;
  --fail-ratio-below)
    ratio_nums+=("$2")
    ratio_dens+=("$3")
    ratio_floors+=("$4")
    shift 4
    ;;
  *) break ;;
  esac
done

if [ "$#" -lt 3 ]; then
  echo "usage: bench_compare.sh [gates] BASELINE_DIR FRESH_DIR BENCH.json..." >&2
  exit 2
fi
baseline_dir="$1"
fresh_dir="$2"
shift 2

fail=0

# Flatten every numeric leaf of $2 to "<prefix>.path value" lines.
flatten() {
  jq -r --arg prefix "$1" '
    paths(type == "number") as $p
    | "\($prefix).\($p | map(tostring) | join(".")) \(getpath($p))"
  ' "$2"
}

base_flat=""
fresh_flat=""
missing=()
for file in "$@"; do
  prefix="${file%.json}"
  base="$baseline_dir/$file"
  fresh="$fresh_dir/$file"
  if [ ! -e "$fresh" ]; then
    if [ -e "$base" ]; then
      missing+=("$file (no fresh results)")
      fail=1
    else
      echo "bench-compare: $file never ran and has no baseline, skipping"
    fi
    continue
  fi
  if [ -e "$base" ]; then
    if cmp -s "$base" "$fresh"; then
      # bench output embeds measured times; byte-identical means the
      # committed copy was never overwritten, i.e. the bench didn't run
      missing+=("$file (fresh copy identical to committed baseline)")
      fail=1
      continue
    fi
    base_flat+="$(flatten "$prefix" "$base")"$'\n'
  else
    echo "bench-compare: no baseline for $file, comparing fresh only"
  fi
  fresh_flat+="$(flatten "$prefix" "$fresh")"$'\n'
done

joined=$(join -a1 -a2 -e '-' -o 0,1.2,2.2 \
  <(printf '%s' "$base_flat" | sort) \
  <(printf '%s' "$fresh_flat" | sort))

awk '
    BEGIN {
      printf "\n### bench-compare\n\n"
      printf "| metric | baseline | fresh | ratio |\n"
      printf "|---|---:|---:|---:|\n"
    }
    NF == 3 {
      ratio = "-"
      if ($2 != "-" && $3 != "-" && $2 + 0 != 0)
        ratio = sprintf("%.2f", ($3 + 0) / ($2 + 0))
      printf "| %s | %s | %s | %s |\n", $1, $2, $3, ratio
    }' <<<"$joined"

if [ "${#missing[@]}" -gt 0 ]; then
  for m in "${missing[@]}"; do
    echo "bench-compare: FAIL committed baseline without a fresh run: $m" |
      tee /dev/stderr
  done
fi

for i in "${!gate_regexes[@]}"; do
  regex="${gate_regexes[$i]}"
  floor="${gate_floors[$i]}"
  while read -r path base_v fresh_v; do
    [ "$base_v" = "-" ] || [ "$fresh_v" = "-" ] && continue
    awk -v b="$base_v" -v f="$fresh_v" -v m="$floor" \
      'BEGIN { exit !(b > 0 && f / b < m) }' || continue
    echo "bench-compare: FAIL $path ratio $(awk -v b="$base_v" -v f="$fresh_v" \
      'BEGIN { printf "%.2f", f / b }') below floor $floor" >&2
    fail=1
  done < <(grep -E "^${regex} " <<<"$joined" || true)
done

for i in "${!ratio_nums[@]}"; do
  num_path="${ratio_nums[$i]}"
  den_path="${ratio_dens[$i]}"
  floor="${ratio_floors[$i]}"
  num=$(awk -v p="$num_path" '$1 == p { print $2 }' <<<"$fresh_flat")
  den=$(awk -v p="$den_path" '$1 == p { print $2 }' <<<"$fresh_flat")
  if [ -z "$num" ] || [ -z "$den" ]; then
    echo "bench-compare: ratio gate $num_path / $den_path skipped (path missing)"
    continue
  fi
  if awk -v n="$num" -v d="$den" -v m="$floor" \
    'BEGIN { exit !(d > 0 && n / d < m) }'; then
    echo "bench-compare: FAIL $num_path / $den_path = $(awk -v n="$num" -v d="$den" \
      'BEGIN { printf "%.3f", n / d }') below floor $floor" >&2
    fail=1
  fi
done
exit "$fail"
