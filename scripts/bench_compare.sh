#!/usr/bin/env bash
# bench_compare.sh [--fail-below PATH_REGEX MIN_RATIO]... BASELINE.json FRESH.json
#
# Flatten every numeric leaf of the two bench JSON files to "path value"
# pairs and emit a markdown table of baseline / fresh / ratio, for
# $GITHUB_STEP_SUMMARY.  Paths present on only one side are shown with a
# "-" on the other; absolute numbers vary by runner, so the ratio column is
# the thing to read.
#
# --fail-below PATH_REGEX MIN_RATIO (repeatable) turns the comparison into
# a gate: exit 1 if any metric whose flattened path matches PATH_REGEX has
# a fresh/baseline ratio below MIN_RATIO.  Use generous floors — this is a
# catastrophic-regression catch, not a benchmark; absolute numbers swing by
# runner, ratios by tens of percent.  Paths missing on either side are not
# gated (a renamed metric should fail review, not CI).
#
# --fail-ratio-below NUM_PATH DEN_PATH MIN (repeatable) gates on a ratio
# *within the fresh file*: exit 1 if fresh[NUM_PATH] / fresh[DEN_PATH] is
# below MIN.  Runner-speed-independent (both sides ran on the same box in
# the same run), so it suits overhead budgets — e.g. supervised vs plain
# throughput.  Paths are exact flattened paths, not regexes; a missing
# path skips the gate.
set -euo pipefail

gate_regexes=()
gate_floors=()
ratio_nums=()
ratio_dens=()
ratio_floors=()
while true; do
  case "${1:-}" in
  --fail-below)
    gate_regexes+=("$2")
    gate_floors+=("$3")
    shift 3
    ;;
  --fail-ratio-below)
    ratio_nums+=("$2")
    ratio_dens+=("$3")
    ratio_floors+=("$4")
    shift 4
    ;;
  *) break ;;
  esac
done

baseline="$1"
fresh="$2"

# A bench that gained a JSON file (or a brand-new bench) has no committed
# baseline yet: nothing to compare, not an error.
if [ ! -e "$baseline" ]; then
  echo "bench-compare: no baseline for $(basename "$fresh"), skipping"
  exit 0
fi
if [ ! -e "$fresh" ]; then
  echo "bench-compare: no fresh results at $fresh, skipping"
  exit 0
fi

flatten() {
  jq -r '
    paths(type == "number") as $p
    | "\($p | map(tostring) | join(".")) \(getpath($p))"
  ' "$1"
}

joined=$(join -a1 -a2 -e '-' -o 0,1.2,2.2 \
  <(flatten "$baseline" | sort) \
  <(flatten "$fresh" | sort))

awk -v name="$(basename "$fresh")" '
    BEGIN {
      printf "\n### bench-compare: %s\n\n", name
      printf "| metric | baseline | fresh | ratio |\n"
      printf "|---|---:|---:|---:|\n"
    }
    {
      ratio = "-"
      if ($2 != "-" && $3 != "-" && $2 + 0 != 0)
        ratio = sprintf("%.2f", ($3 + 0) / ($2 + 0))
      printf "| %s | %s | %s | %s |\n", $1, $2, $3, ratio
    }' <<<"$joined"

fail=0
for i in "${!gate_regexes[@]}"; do
  regex="${gate_regexes[$i]}"
  floor="${gate_floors[$i]}"
  while read -r path base_v fresh_v; do
    [ "$base_v" = "-" ] || [ "$fresh_v" = "-" ] && continue
    awk -v b="$base_v" -v f="$fresh_v" -v m="$floor" \
      'BEGIN { exit !(b > 0 && f / b < m) }' || continue
    echo "bench-compare: FAIL $path ratio $(awk -v b="$base_v" -v f="$fresh_v" \
      'BEGIN { printf "%.2f", f / b }') below floor $floor" >&2
    fail=1
  done < <(grep -E "^${regex} " <<<"$joined" || true)
done

fresh_flat=$(flatten "$fresh")
for i in "${!ratio_nums[@]}"; do
  num_path="${ratio_nums[$i]}"
  den_path="${ratio_dens[$i]}"
  floor="${ratio_floors[$i]}"
  num=$(awk -v p="$num_path" '$1 == p { print $2 }' <<<"$fresh_flat")
  den=$(awk -v p="$den_path" '$1 == p { print $2 }' <<<"$fresh_flat")
  if [ -z "$num" ] || [ -z "$den" ]; then
    echo "bench-compare: ratio gate $num_path / $den_path skipped (path missing)"
    continue
  fi
  if awk -v n="$num" -v d="$den" -v m="$floor" \
    'BEGIN { exit !(d > 0 && n / d < m) }'; then
    echo "bench-compare: FAIL $num_path / $den_path = $(awk -v n="$num" -v d="$den" \
      'BEGIN { printf "%.3f", n / d }') below floor $floor" >&2
    fail=1
  fi
done
exit "$fail"
