#!/usr/bin/env bash
# bench_compare.sh BASELINE.json FRESH.json
#
# Flatten every numeric leaf of the two bench JSON files to "path value"
# pairs and emit a markdown table of baseline / fresh / ratio, for
# $GITHUB_STEP_SUMMARY.  Paths present on only one side are shown with a
# "-" on the other; absolute numbers vary by runner, so the ratio column is
# the thing to read.
set -euo pipefail

baseline="$1"
fresh="$2"

# A bench that gained a JSON file (or a brand-new bench) has no committed
# baseline yet: nothing to compare, not an error.
if [ ! -e "$baseline" ]; then
  echo "bench-compare: no baseline for $(basename "$fresh"), skipping"
  exit 0
fi
if [ ! -e "$fresh" ]; then
  echo "bench-compare: no fresh results at $fresh, skipping"
  exit 0
fi

flatten() {
  jq -r '
    paths(type == "number") as $p
    | "\($p | map(tostring) | join(".")) \(getpath($p))"
  ' "$1"
}

join -a1 -a2 -e '-' -o 0,1.2,2.2 \
  <(flatten "$baseline" | sort) \
  <(flatten "$fresh" | sort) |
  awk -v name="$(basename "$fresh")" '
    BEGIN {
      printf "\n### bench-compare: %s\n\n", name
      printf "| metric | baseline | fresh | ratio |\n"
      printf "|---|---:|---:|---:|\n"
    }
    {
      ratio = "-"
      if ($2 != "-" && $3 != "-" && $2 + 0 != 0)
        ratio = sprintf("%.2f", ($3 + 0) / ($2 + 0))
      printf "| %s | %s | %s | %s |\n", $1, $2, $3, ratio
    }'
