(* Shared fixtures and Alcotest testables for the suites. *)

module Db = Oodb.Db
module Value = Oodb.Value
module Oid = Oodb.Oid
module Schema = Oodb.Schema
module Errors = Oodb.Errors
module Transaction = Oodb.Transaction
module Expr = Events.Expr
module Detector = Events.Detector
module Context = Events.Context
module System = Sentinel.System

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal
let oid : Oid.t Alcotest.testable = Alcotest.testable Oid.pp Oid.equal

let occurrence : Oodb.Occurrence.t Alcotest.testable =
  Alcotest.testable Oodb.Occurrence.pp Oodb.Occurrence.equal

let check_raises_any msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an exception" msg
  | exception _ -> ()

let test name f = Alcotest.test_case name `Quick f

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

(* A database with the Figure 8 employee/manager schema installed. *)
let employee_db ?layout () =
  let db = Db.create ?layout () in
  Workloads.Payroll.install db;
  db

let new_employee ?(cls = "employee") ?(salary = 1000.) ?(name = "emp") db =
  Db.new_object db cls
    ~attrs:[ ("name", Value.Str name); ("salary", Value.Float salary) ]

(* A database + system + an occurrence-collecting notifiable. *)
let sys_with_collector () =
  let db = employee_db () in
  let sys = System.create db in
  let seen : Oodb.Occurrence.t list ref = ref [] in
  let collector =
    System.create_notifiable sys ~name:"collector" (fun occ ->
        seen := occ :: !seen)
  in
  (db, sys, collector, fun () -> List.rev !seen)

(* Feed a detector a hand-made occurrence stream.  Timestamps auto-increment
   from 1 unless given. *)
let mk_occ ?(source = 1) ?(cls = "employee") ?(params = []) ~at meth modifier =
  Oodb.Occurrence.make ~source:(Oid.of_int source) ~source_class:cls ~meth
    ~modifier ~params ~at

let detect ?context ?subsumes expr stream =
  let signals = ref [] in
  let d =
    Detector.create ?context ?subsumes
      ~on_signal:(fun i -> signals := i :: !signals)
      expr
  in
  List.iter (Detector.feed d) stream;
  (d, List.rev !signals)

(* Constituent methods of a detected instance, chronological. *)
let shape (i : Detector.instance) =
  List.map (fun (o : Oodb.Occurrence.t) -> (o.meth, o.at)) i.constituents
