(* Cross-layer chaos harness for the supervised shard pool: kill a shard
   mid-batch (per-shard WAL recovery must preserve every acknowledged
   commit), wedge one with a poisoned infinite job, flood a bounded inbox
   under every backpressure policy, and fault-inject the recovery path so
   a restart's own init crashes.  Each scenario asserts the documented
   terminal state and that the pool's counters stay honest. *)

open Helpers
module Wal = Oodb.Wal
module Shard_pool = Sentinel.Shard_pool

let ok_or_raise = function
  | Ok x -> x
  | Error e -> raise (Shard_pool.Shard_error e)

let post_on_exn pool i f = ok_or_raise (Shard_pool.post_on pool i f)
let run_on_exn pool i f =
  match Shard_pool.run_on pool i f with Ok x -> x | Error e -> raise e

(* Poll until [pred ()]; supervision is asynchronous, so every "the
   supervisor will have..." assertion waits bounded-then-fails. *)
let wait_for ?(timeout_s = 10.) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let tight_supervision =
  {
    Shard_pool.heartbeat_interval_ms = 2;
    wedge_timeout_ms = 100;
    max_restarts = 5;
    restart_window_ms = 10_000;
  }

let with_wal_paths n f =
  let paths =
    Array.init n (fun i ->
        Filename.temp_file (Printf.sprintf "chaos%d" i) ".wal")
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths)
    (fun () -> f paths)

(* --- kill a shard mid-batch: acknowledged commits survive the restart ---- *)

let test_kill_mid_batch () =
  with_wal_paths 2 (fun paths ->
      let pool =
        Shard_pool.create ~shards:2 ~supervision:tight_supervision
          ~init:(fun _ i ->
            let db = employee_db () in
            let sys = System.create db in
            (* a restarted shard replays its own log before attaching: this
               is where every acknowledged commit comes back from *)
            ignore (Wal.replay db paths.(i));
            ignore (Wal.attach db paths.(i));
            sys)
          ()
      in
      let oids =
        run_on_exn pool 0 (fun sys ->
            List.init 8 (fun _ -> new_employee (System.db sys)))
      in
      (* acknowledged batch: each write completed (run_on returned Ok), so
         each is on the shard's durable log *)
      List.iteri
        (fun k o ->
          run_on_exn pool 0 (fun sys ->
              ignore
                (Db.send (System.db sys) o "set_salary"
                   [ Value.Float (float_of_int (1000 + k)) ])))
        oids;
      ok_or_raise (Shard_pool.kill pool 0);
      wait_for "shard 0 restart" (fun () ->
          (Shard_pool.stats pool).Shard_pool.shard_restarts.(0) >= 1
          && Shard_pool.shard_state pool 0 = `Ready);
      (* the replacement keeps serving the same stride... *)
      let fresh = run_on_exn pool 0 (fun sys -> new_employee (System.db sys)) in
      Alcotest.(check int) "successor allocates in the same residue class" 0
        (Oid.to_int fresh mod 2);
      (* ...and no acknowledged commit was lost across the crash *)
      List.iteri
        (fun k o ->
          Alcotest.check value
            (Printf.sprintf "acked commit %d survived the kill" k)
            (Value.Float (float_of_int (1000 + k)))
            (run_on_exn pool 0 (fun sys -> Db.get (System.db sys) o "salary")))
        oids;
      let st = Shard_pool.stats pool in
      Alcotest.(check bool) "restart counted" true
        (st.Shard_pool.shard_restarts.(0) >= 1);
      (* the kill job itself was in flight when the shard died *)
      Alcotest.(check bool) "in-flight job dead-lettered" true
        (Shard_pool.dead_letter_count pool >= 1);
      Alcotest.(check bool) "sibling shard untouched" true
        (st.Shard_pool.shard_restarts.(1) = 0);
      Shard_pool.drain pool;
      Shard_pool.stop pool)

(* --- batch replay: jobs queued behind the kill run on the successor ------ *)

let test_kill_replays_backlog () =
  let pool =
    Shard_pool.create ~shards:2 ~supervision:tight_supervision
      ~init:(fun _ _ -> System.create (employee_db ()))
      ()
  in
  (* hold the worker so the kill and a backlog queue up behind one batch *)
  let gate = Atomic.make false in
  let order = ref [] in
  let lock = Mutex.create () in
  post_on_exn pool 0 (fun _ ->
      while not (Atomic.get gate) do
        Domain.cpu_relax ()
      done);
  ok_or_raise (Shard_pool.kill pool 0);
  for k = 1 to 5 do
    post_on_exn pool 0 (fun _ ->
        Mutex.protect lock (fun () -> order := k :: !order))
  done;
  Atomic.set gate true;
  wait_for "backlog replayed on the successor" (fun () ->
      Mutex.protect lock (fun () -> List.length !order) = 5);
  (* the messages queued behind the poison were replayed in arrival order *)
  Alcotest.(check (list int)) "replay preserves order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order);
  Shard_pool.drain pool;
  (* dead-lettered jobs were accepted and then displaced, so they count
     into [discarded]: the books must balance exactly at quiescence *)
  let st = Shard_pool.stats pool in
  Alcotest.(check int) "every accepted job accounted for"
    st.Shard_pool.enqueued
    (st.Shard_pool.completed + st.Shard_pool.discarded);
  Alcotest.(check bool) "the killed job is parked for inspection" true
    (Shard_pool.dead_letter_count pool >= 1);
  Shard_pool.stop pool

(* --- wedge: a poisoned infinite job is detected and the shard replaced --- *)

let test_wedged_shard_replaced () =
  let pool =
    Shard_pool.create ~shards:2
      ~supervision:
        { tight_supervision with wedge_timeout_ms = 40; max_restarts = 3 }
      ~init:(fun _ _ -> System.create (employee_db ()))
      ()
  in
  let release = Atomic.make false in
  let after = Atomic.make false in
  post_on_exn pool 0 (fun _ ->
      (* the poisoned job: spins until the test releases it, unbounded as
         far as the supervisor can tell *)
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done);
  post_on_exn pool 0 (fun _ -> Atomic.set after true);
  wait_for "wedge detected and shard restarted" (fun () ->
      (Shard_pool.stats pool).Shard_pool.shard_restarts.(0) >= 1);
  wait_for "queued job runs on the replacement" (fun () -> Atomic.get after);
  Alcotest.(check bool) "replacement is ready" true
    (Shard_pool.shard_state pool 0 = `Ready);
  (* the wedged job was abandoned with its domain, recorded as dead-lettered *)
  Alcotest.(check bool) "wedged job dead-lettered" true
    (Shard_pool.dead_letter_count pool >= 1);
  (* let the abandoned domain finish so stop can join it *)
  Atomic.set release true;
  Shard_pool.drain pool;
  Shard_pool.stop pool

(* --- restart budget: repeated death degrades; reinstate recovers --------- *)

let test_restart_budget_degrades () =
  let generation = Atomic.make 0 in
  let healthy = Atomic.make false in
  let pool =
    Shard_pool.create ~shards:2
      ~supervision:
        { tight_supervision with max_restarts = 2; restart_window_ms = 60_000 }
      ~init:(fun _ i ->
        if i = 0 && Atomic.fetch_and_add generation 1 > 0
           && not (Atomic.get healthy)
        then failwith "injected recovery crash";
        System.create (employee_db ()))
      ()
  in
  ok_or_raise (Shard_pool.kill pool 0);
  (* every restart's init crashes, so the budget drains and the shard
     reaches its documented terminal state *)
  wait_for "budget exhausted, shard degraded" (fun () ->
      Shard_pool.shard_state pool 0 = `Degraded);
  (* sends to a degraded shard fail fast with the typed error *)
  (match Shard_pool.post_on pool 0 (fun _ -> ()) with
  | Error (Shard_pool.Degraded 0) -> ()
  | Ok () -> Alcotest.fail "degraded shard accepted a job"
  | Error e -> Alcotest.failf "expected Degraded, got %s"
                 (Shard_pool.error_to_string e));
  (* a waiting caller gets the typed error, it does not hang *)
  (match Shard_pool.run_on pool 0 (fun _ -> ()) with
  | Error (Shard_pool.Shard_error (Shard_pool.Degraded 0)) -> ()
  | _ -> Alcotest.fail "run_on on a degraded shard must fail typed");
  (* the sibling is unaffected throughout *)
  Alcotest.(check unit) "sibling still serves" ()
    (run_on_exn pool 1 (fun _ -> ()));
  (* operator action: fix the fault, reinstate, shard comes back *)
  Atomic.set healthy true;
  Shard_pool.reinstate pool 0;
  wait_for "reinstated shard ready" (fun () ->
      Shard_pool.shard_state pool 0 = `Ready);
  Alcotest.(check unit) "reinstated shard serves" ()
    (run_on_exn pool 0 (fun _ -> ()));
  Shard_pool.drain pool;
  Shard_pool.stop pool

(* --- recovery fault: a restart whose init crashes once is retried -------- *)

let test_recovery_fault_retried () =
  let attempts = Atomic.make 0 in
  let pool =
    Shard_pool.create ~shards:2 ~supervision:tight_supervision
      ~init:(fun _ i ->
        (* the replacement's first recovery attempt hits an injected fault
           (a torn read mid-delta-chain); the next sweep retries *)
        if i = 0 && Atomic.fetch_and_add attempts 1 = 1 then
          raise Oodb.Storage.Crash;
        System.create (employee_db ()))
      ()
  in
  ok_or_raise (Shard_pool.kill pool 0);
  wait_for "second recovery attempt converges" (fun () ->
      Atomic.get attempts >= 3 && Shard_pool.shard_state pool 0 = `Ready);
  Alcotest.(check unit) "shard serves after the retried recovery" ()
    (run_on_exn pool 0 (fun _ -> ()));
  Alcotest.(check bool) "both failed and successful restarts counted" true
    ((Shard_pool.stats pool).Shard_pool.shard_restarts.(0) >= 2);
  Shard_pool.drain pool;
  Shard_pool.stop pool

(* --- flood: Shed_newest rejects visibly and the counters stay honest ----- *)

let flood_pool policy ~capacity =
  Shard_pool.create ~shards:2 ~inbox_capacity:capacity ~backpressure:policy
    ~init:(fun _ _ -> System.create (employee_db ()))
    ()

let test_flood_shed_newest () =
  let pool = flood_pool Shard_pool.Shed_newest ~capacity:8 in
  let gate = Atomic.make false in
  post_on_exn pool 0 (fun _ ->
      while not (Atomic.get gate) do
        Domain.cpu_relax ()
      done);
  let ran = Atomic.make 0 in
  let accepted = ref 0 and shed = ref 0 in
  for _ = 1 to 100 do
    match Shard_pool.post_on pool 0 (fun _ -> Atomic.incr ran) with
    | Ok () -> incr accepted
    | Error (Shard_pool.Overloaded 0) -> incr shed
    | Error e ->
      Alcotest.failf "expected Overloaded, got %s"
        (Shard_pool.error_to_string e)
  done;
  Alcotest.(check bool) "flood actually overflowed" true (!shed > 0);
  Atomic.set gate true;
  Shard_pool.drain pool;
  let st = Shard_pool.stats pool in
  Alcotest.(check int) "posted = accepted + shed" 100 (!accepted + !shed);
  Alcotest.(check int) "shed counter matches rejections" !shed
    st.Shard_pool.shed;
  Alcotest.(check int) "every accepted job ran" !accepted (Atomic.get ran);
  Shard_pool.stop pool

(* --- flood: Dead_letter parks the overflow; replay completes it ---------- *)

let test_flood_dead_letter_replay () =
  let pool = flood_pool Shard_pool.Dead_letter ~capacity:8 in
  let gate = Atomic.make false in
  post_on_exn pool 0 (fun _ ->
      while not (Atomic.get gate) do
        Domain.cpu_relax ()
      done);
  let ran = Atomic.make 0 in
  let accepted = ref 0 and parked = ref 0 in
  for _ = 1 to 60 do
    match Shard_pool.post_on pool 0 (fun _ -> Atomic.incr ran) with
    | Ok () -> incr accepted
    | Error (Shard_pool.Dead_lettered 0) -> incr parked
    | Error e ->
      Alcotest.failf "expected Dead_lettered, got %s"
        (Shard_pool.error_to_string e)
  done;
  Alcotest.(check bool) "flood actually parked jobs" true (!parked > 0);
  Alcotest.(check int) "ring holds every parked job" !parked
    (Shard_pool.dead_letter_count pool);
  Atomic.set gate true;
  Shard_pool.drain pool;
  (* replay the parked jobs now that the shard has capacity again; replay
     goes through the same bounded path, so one pass re-accepts at most an
     inbox-full — the operator loop is replay-drain-repeat until empty *)
  let replayed = ref 0 in
  let rounds = ref 0 in
  while Shard_pool.dead_letter_count pool > 0 && !rounds < 100 do
    replayed := !replayed + Shard_pool.replay_dead_letters pool;
    Shard_pool.drain pool;
    incr rounds
  done;
  Alcotest.(check int) "replay loop re-accepts the whole ring" !parked
    !replayed;
  Alcotest.(check int) "nothing left parked" 0
    (Shard_pool.dead_letter_count pool);
  Alcotest.(check int) "accepted + replayed all ran" (!accepted + !parked)
    (Atomic.get ran);
  Shard_pool.stop pool

(* --- flood: Block absorbs a burst; an expired deadline sheds typed ------- *)

let test_flood_block () =
  let pool =
    flood_pool (Shard_pool.Block { max_wait_ms = 5_000 }) ~capacity:4
  in
  let ran = Atomic.make 0 in
  (* 200 posts into a 4-deep inbox: the producer must block on the consumer
     repeatedly, and every single job must be accepted and executed *)
  for _ = 1 to 200 do
    post_on_exn pool 0 (fun _ -> Atomic.incr ran)
  done;
  Shard_pool.drain pool;
  Alcotest.(check int) "block policy loses nothing" 200 (Atomic.get ran);
  Alcotest.(check int) "nothing shed" 0 (Shard_pool.stats pool).Shard_pool.shed;
  Shard_pool.stop pool

let test_block_deadline_expires () =
  let pool = flood_pool (Shard_pool.Block { max_wait_ms = 30 }) ~capacity:2 in
  let gate = Atomic.make false in
  post_on_exn pool 0 (fun _ ->
      while not (Atomic.get gate) do
        Domain.cpu_relax ()
      done);
  let saw_overload = ref false in
  (let k = ref 0 in
   while (not !saw_overload) && !k < 20 do
     (match Shard_pool.post_on pool 0 (fun _ -> ()) with
     | Ok () -> ()
     | Error (Shard_pool.Overloaded 0) -> saw_overload := true
     | Error e ->
       Alcotest.failf "expected Overloaded, got %s"
         (Shard_pool.error_to_string e));
     incr k
   done);
  Alcotest.(check bool) "blocked post times out typed" true !saw_overload;
  Atomic.set gate true;
  Shard_pool.drain pool;
  Shard_pool.stop pool

(* --- lifecycle: a stopped pool rejects everything, typed ----------------- *)

let test_stopped_pool_typed_errors () =
  let pool =
    Shard_pool.create ~shards:2
      ~init:(fun _ _ -> System.create (employee_db ()))
      ()
  in
  let o = run_on_exn pool 0 (fun sys -> new_employee (System.db sys)) in
  Shard_pool.stop pool;
  (match Shard_pool.post pool o "set_salary" [ Value.Float 1. ] with
  | Error Shard_pool.Stopped -> ()
  | _ -> Alcotest.fail "post after stop must be Error Stopped");
  (match Shard_pool.post_on pool 0 (fun _ -> ()) with
  | Error Shard_pool.Stopped -> ()
  | _ -> Alcotest.fail "post_on after stop must be Error Stopped");
  (match Shard_pool.run_on pool 0 (fun _ -> ()) with
  | Error (Shard_pool.Shard_error Shard_pool.Stopped) -> ()
  | _ -> Alcotest.fail "run_on after stop must be Error (Shard_error Stopped)");
  (* stop is idempotent *)
  Shard_pool.stop pool

(* --- run_on timeout: the wait is abandoned, the pool stays healthy ------- *)

let test_run_on_timeout () =
  let pool =
    Shard_pool.create ~shards:2
      ~init:(fun _ _ -> System.create (employee_db ()))
      ()
  in
  let gate = Atomic.make false in
  post_on_exn pool 0 (fun _ ->
      while not (Atomic.get gate) do
        Domain.cpu_relax ()
      done);
  (match Shard_pool.run_on ~timeout_ms:20 pool 0 (fun _ -> 42) with
  | Error (Shard_pool.Shard_error (Shard_pool.Timed_out 0)) -> ()
  | Ok _ -> Alcotest.fail "run_on returned despite the gate"
  | Error e -> Alcotest.failf "expected Timed_out, got %s"
                 (Printexc.to_string e));
  Alcotest.(check int) "timeout counted" 1
    (Shard_pool.stats pool).Shard_pool.timeouts;
  Atomic.set gate true;
  (* the abandoned job still executes; the shard is unharmed *)
  Alcotest.(check int) "shard still serves" 7
    (run_on_exn pool 0 (fun _ -> 7));
  Shard_pool.drain pool;
  Shard_pool.stop pool

let suite =
  [
    test "kill mid-batch: acked commits survive via WAL recovery"
      test_kill_mid_batch;
    test "kill mid-batch: backlog replays in order on the successor"
      test_kill_replays_backlog;
    test "wedged shard detected and replaced" test_wedged_shard_replaced;
    test "restart budget exhausts to degraded; reinstate recovers"
      test_restart_budget_degrades;
    test "recovery fault on restart is retried" test_recovery_fault_retried;
    test "flood: shed_newest rejects typed, counters honest"
      test_flood_shed_newest;
    test "flood: dead_letter parks overflow, replay completes"
      test_flood_dead_letter_replay;
    test "flood: block absorbs a 50x burst losslessly" test_flood_block;
    test "flood: block deadline expiry sheds typed" test_block_deadline_expires;
    test "stopped pool rejects typed" test_stopped_pool_typed_errors;
    test "run_on timeout abandons the wait" test_run_on_timeout;
  ]
