open Helpers
module Coupling = Sentinel.Coupling
module Rule = Sentinel.Rule
module Error_policy = Sentinel.Error_policy
module Audit = Sentinel.Audit
module Persist = Oodb.Persist
module Codec = Events.Codec
module Occurrence = Oodb.Occurrence

let set_salary db e v = ignore (Db.send db e "set_salary" [ Value.Float v ])
let salary_event = Expr.eom ~cls:"employee" "set_salary"

(* --- the headline scenario: 100 rules, 10 of them broken ------------------ *)

(* One event shared by 100 class-level rules; 10 have always-raising actions
   under [Quarantine 3].  Every healthy rule must fire on every event, the
   broken rules must trip their breakers after exactly 3 failures each, the
   3 x 10 contained firings must be replayable dead letters, and the host
   transactions must commit throughout. *)
let test_blast_radius () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  let healthy_runs = ref 0 in
  let bomb_armed = ref true in
  System.register_action sys "tick" (fun _ _ -> incr healthy_runs);
  System.register_action sys "explode" (fun _ _ ->
      if !bomb_armed then failwith "boom");
  let bad = ref [] and good = ref [] in
  for i = 1 to 100 do
    let broken = i mod 10 = 0 in
    let oid =
      System.create_rule sys
        ~name:(Printf.sprintf "r%03d" i)
        ~policy:(Error_policy.Quarantine 3) ~monitor_classes:[ "employee" ]
        ~event:salary_event ~condition:"true"
        ~action:(if broken then "explode" else "tick")
        ()
    in
    if broken then bad := oid :: !bad else good := oid :: !good
  done;
  for ev = 1 to 5 do
    match
      Transaction.atomically db (fun () -> set_salary db e (float_of_int ev))
    with
    | Ok () -> ()
    | Error exn ->
      Alcotest.failf "host transaction %d aborted: %s" ev
        (Printexc.to_string exn)
  done;
  Alcotest.check value "all updates committed" (Value.Float 5.)
    (Db.get db e "salary");
  List.iter
    (fun oid ->
      let r = System.rule_info sys oid in
      Alcotest.(check int) "healthy rule saw every event" 5 r.Rule.fired;
      Alcotest.(check bool) "healthy rule in service" false r.Rule.quarantined)
    !good;
  Alcotest.(check int) "healthy actions ran" (90 * 5) !healthy_runs;
  List.iter
    (fun oid ->
      let r = System.rule_info sys oid in
      Alcotest.(check bool) "bad rule quarantined" true r.Rule.quarantined;
      Alcotest.(check int) "exactly 3 attempts" 3 r.Rule.fired;
      Alcotest.(check int) "streak at threshold" 3 r.Rule.failure_streak;
      Alcotest.check value "breaker state persisted" (Value.Bool true)
        (Db.get db oid Sentinel.Sentinel_classes.a_quarantined))
    !bad;
  Alcotest.(check int) "10 rules out of service" 10
    (List.length (System.quarantined_rules sys));
  let dls = System.dead_letters sys in
  Alcotest.(check int) "30 dead letters" 30 (List.length dls);
  let s = System.stats sys in
  Alcotest.(check int) "contained counter" 30 s.System.contained_failures;
  Alcotest.(check int) "quarantined gauge" 10 s.System.quarantined_rules;
  Alcotest.(check int) "dead-letter gauge" 30 s.System.dead_letters;
  (* fix the fault, replay the queue *)
  bomb_armed := false;
  List.iter
    (fun dl ->
      match System.replay_dead_letter sys dl with
      | Ok () -> ()
      | Error exn -> Alcotest.failf "replay failed: %s" (Printexc.to_string exn))
    dls;
  Alcotest.(check int) "queue drained" 0 (List.length (System.dead_letters sys));
  (* reinstate: back in service with a fresh breaker budget *)
  List.iter (System.reinstate sys) !bad;
  Alcotest.(check int) "none quarantined" 0
    (List.length (System.quarantined_rules sys));
  set_salary db e 6.;
  List.iter
    (fun oid ->
      let r = System.rule_info sys oid in
      (* 3 original attempts + 3 replays + 1 live firing *)
      Alcotest.(check int) "reinstated rule fires" 7 r.Rule.fired;
      Alcotest.(check int) "streak reset" 0 r.Rule.failure_streak)
    !bad

(* --- deferred batches ------------------------------------------------------ *)

(* Two healthy deferred rules queued behind a failing one (higher priority,
   so it runs first).  Contained: the rest of the ordered batch still runs
   and the transaction commits.  Propagate: the batch dies with the
   transaction, as before. *)
let deferred_world policy =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  let log = ref [] in
  System.register_action sys "explode" (fun _ _ ->
      log := "bomb" :: !log;
      failwith "boom");
  System.register_action sys "note-a" (fun _ _ -> log := "a" :: !log);
  System.register_action sys "note-b" (fun _ _ -> log := "b" :: !log);
  let mk name priority action policy =
    ignore
      (System.create_rule sys ~name ~priority ~policy
         ~coupling:Coupling.Deferred ~monitor:[ e ] ~event:salary_event
         ~condition:"true" ~action ())
  in
  mk "bomb" 10 "explode" policy;
  mk "a" 5 "note-a" Error_policy.Propagate;
  mk "b" 0 "note-b" Error_policy.Propagate;
  let result = Transaction.atomically db (fun () -> set_salary db e 1.) in
  (db, e, result, List.rev !log)

let test_deferred_batch_survives_contained_failure () =
  let db, e, result, log = deferred_world Error_policy.Contain in
  (match result with
  | Ok () -> ()
  | Error exn -> Alcotest.failf "committed? %s" (Printexc.to_string exn));
  Alcotest.(check (list string)) "ordered batch completed" [ "bomb"; "a"; "b" ]
    log;
  Alcotest.check value "host change committed" (Value.Float 1.)
    (Db.get db e "salary")

let test_deferred_batch_dies_under_propagate () =
  let db, e, result, log = deferred_world Error_policy.Propagate in
  (match result with
  | Ok () -> Alcotest.fail "transaction should have aborted"
  | Error (Failure msg) -> Alcotest.(check string) "the bomb" "boom" msg
  | Error exn -> Alcotest.failf "unexpected: %s" (Printexc.to_string exn));
  Alcotest.(check (list string)) "batch cut short" [ "bomb" ] log;
  Alcotest.check value "host change rolled back" (Value.Float 1000.)
    (Db.get db e "salary")

(* --- detached retry -------------------------------------------------------- *)

let test_detached_retry_until_success () =
  let db = employee_db () in
  let backoffs = ref [] in
  let sys =
    System.create ~retry_backoff:(fun n -> backoffs := n :: !backoffs) db
  in
  let e = new_employee db in
  let tries = ref 0 in
  System.register_action sys "flaky" (fun _ _ ->
      incr tries;
      if !tries < 3 then failwith "transient");
  ignore
    (System.create_rule sys ~name:"flaky" ~coupling:Coupling.Detached
       ~policy:Error_policy.Contain ~max_retries:3 ~monitor:[ e ]
       ~event:salary_event ~condition:"true" ~action:"flaky" ());
  set_salary db e 1.;
  Alcotest.(check int) "succeeded on third attempt" 3 !tries;
  Alcotest.(check (list int)) "backoff between attempts" [ 2; 1 ] !backoffs;
  Alcotest.(check int) "retries counted" 2 (System.stats sys).System.retries;
  Alcotest.(check int) "no dead letter" 0
    (List.length (System.dead_letters sys));
  Alcotest.(check int) "streak clean" 0
    (System.rule_info sys (Option.get (System.find_rule sys "flaky")))
      .Rule.failure_streak

let test_detached_retry_exhaustion_dead_letters () =
  let db = employee_db () in
  let sys = System.create ~retry_backoff:(fun _ -> ()) db in
  let e = new_employee db in
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  let rule =
    System.create_rule sys ~name:"bomb" ~coupling:Coupling.Detached
      ~policy:Error_policy.Contain ~max_retries:1 ~monitor:[ e ]
      ~event:salary_event ~condition:"true" ~action:"explode" ()
  in
  set_salary db e 1.;
  Alcotest.(check int) "one retry" 1 (System.stats sys).System.retries;
  (match System.dead_letters sys with
  | [ dl ] ->
    Alcotest.check value "attempts recorded" (Value.Int 2)
      (Db.get db dl Sentinel.Sentinel_classes.a_attempts);
    Alcotest.check value "culprit recorded" (Value.Obj rule)
      (Db.get db dl Sentinel.Sentinel_classes.a_rule)
  | dls -> Alcotest.failf "expected 1 dead letter, got %d" (List.length dls));
  match System.recent_failures sys with
  | (name, Failure _) :: _ -> Alcotest.(check string) "logged" "bomb" name
  | _ -> Alcotest.fail "failure not in the ring buffer"

(* --- quarantine survives reload -------------------------------------------- *)

let test_quarantine_survives_rehydrate () =
  let db = employee_db () in
  let sys = System.create db in
  let bomb_armed = ref true in
  System.register_action sys "explode" (fun _ _ ->
      if !bomb_armed then failwith "boom");
  let e = new_employee db in
  let rule =
    System.create_rule sys ~name:"bomb" ~policy:(Error_policy.Quarantine 2)
      ~monitor:[ e ] ~event:salary_event ~condition:"true" ~action:"explode" ()
  in
  set_salary db e 1.;
  set_salary db e 2.;
  Alcotest.(check bool) "tripped" true (System.rule_info sys rule).Rule.quarantined;
  let text = Persist.to_string db in
  let db2 = Db.create () in
  Workloads.Payroll.install db2;
  let sys2 = System.create db2 in
  let armed2 = ref false in
  System.register_action sys2 "explode" (fun _ _ ->
      if !armed2 then failwith "boom");
  Persist.of_string db2 text;
  System.rehydrate sys2;
  let r2 = System.rule_info sys2 rule in
  Alcotest.(check bool) "still quarantined after reload" true r2.Rule.quarantined;
  Alcotest.(check int) "streak restored" 2 r2.Rule.failure_streak;
  Alcotest.(check bool) "policy restored" true
    (r2.Rule.policy = Error_policy.Quarantine 2);
  Alcotest.(check int) "dead letters restored" 2
    (List.length (System.dead_letters sys2));
  set_salary db2 e 3.;
  Alcotest.(check int) "stays out of service" 2 r2.Rule.fired;
  System.reinstate sys2 rule;
  set_salary db2 e 4.;
  Alcotest.(check int) "fires after reinstate" 3 r2.Rule.fired;
  Alcotest.(check int) "streak reset" 0 r2.Rule.failure_streak

(* --- rule deletion racing the firing counter ------------------------------- *)

let test_rule_deletes_itself_from_action () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  let self = ref None in
  System.register_action sys "self-destruct" (fun db _ ->
      Db.delete_object db (Option.get !self));
  let rule =
    System.create_rule sys ~name:"once" ~monitor:[ e ] ~event:salary_event
      ~condition:"true" ~action:"self-destruct" ()
  in
  self := Some rule;
  set_salary db e 1.;
  Alcotest.(check bool) "rule object gone" false (Db.exists db rule);
  (* the post-action a_fired/streak writes must not resurrect or crash *)
  System.prune_runtimes sys;
  set_salary db e 2.;
  Alcotest.check value "later events unaffected" (Value.Float 2.)
    (Db.get db e "salary")

let test_rule_deleted_by_own_condition () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  let self = ref None in
  System.register_condition sys "drop-self" (fun db _ ->
      Db.delete_object db (Option.get !self);
      true);
  System.register_action sys "count" (fun _ _ -> ());
  let rule =
    System.create_rule sys ~name:"drop" ~monitor:[ e ] ~event:salary_event
      ~condition:"drop-self" ~action:"count" ()
  in
  self := Some rule;
  (* the condition deletes the rule object before the a_fired write; the
     guarded write must skip rather than raise No_such_object *)
  set_salary db e 1.;
  Alcotest.(check bool) "rule object gone" false (Db.exists db rule);
  Alcotest.(check int) "runtime counted the firing" 1
    (System.rule_info sys rule).Rule.fired

(* --- bounds ----------------------------------------------------------------- *)

let test_failure_log_is_bounded () =
  let db = employee_db () in
  let sys = System.create ~failure_log_limit:4 db in
  let e = new_employee db in
  let n = ref 0 in
  System.register_action sys "explode" (fun _ _ ->
      incr n;
      failwith (Printf.sprintf "boom-%d" !n));
  ignore
    (System.create_rule sys ~name:"bomb" ~policy:Error_policy.Contain
       ~monitor:[ e ] ~event:salary_event ~condition:"true" ~action:"explode" ());
  for i = 1 to 6 do
    set_salary db e (float_of_int i)
  done;
  let recent = System.recent_failures sys in
  Alcotest.(check int) "capped" 4 (List.length recent);
  (match recent with
  | ("bomb", Failure msg) :: _ ->
    Alcotest.(check string) "newest first" "boom-6" msg
  | _ -> Alcotest.fail "unexpected head");
  match List.rev (System.detached_failures sys) with
  | newest :: _ ->
    Alcotest.(check bool) "same log, oldest first" true
      (newest == List.hd recent)
  | [] -> Alcotest.fail "empty"

let test_dead_letter_queue_is_bounded () =
  let db = employee_db () in
  let sys = System.create ~dead_letter_limit:3 db in
  let e = new_employee db in
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  ignore
    (System.create_rule sys ~name:"bomb" ~policy:Error_policy.Contain
       ~monitor:[ e ] ~event:salary_event ~condition:"true" ~action:"explode" ());
  for i = 1 to 5 do
    set_salary db e (float_of_int i)
  done;
  let dls = System.dead_letters sys in
  Alcotest.(check int) "capped at 3" 3 (List.length dls);
  (* oldest were evicted: the survivors are the last three failures *)
  let ats =
    List.map
      (fun dl -> Value.to_int (Db.get db dl Sentinel.Sentinel_classes.a_at))
      dls
  in
  Alcotest.(check bool) "oldest first, later events" true
    (ats = List.sort compare ats);
  Alcotest.(check int) "evicted objects deleted" 3
    (List.length (Db.extent db ~deep:false "__dead_letter"));
  Alcotest.(check int) "purge clears the rest" 3 (System.purge_dead_letters sys);
  Alcotest.(check int) "empty" 0 (List.length (System.dead_letters sys))

(* --- audit + stats integration --------------------------------------------- *)

let test_audit_records_containment () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  let rule =
    System.create_rule sys ~name:"bomb" ~policy:(Error_policy.Quarantine 2)
      ~monitor:[ e ] ~event:salary_event ~condition:"true" ~action:"explode" ()
  in
  let audit = Audit.attach sys in
  set_salary db e 1.;
  set_salary db e 2.;
  (match List.map (fun en -> en.Audit.e_outcome) (Audit.entries_for audit rule) with
  | [ Audit.Contained (Failure _); Audit.Quarantined (Failure _) ] -> ()
  | other -> Alcotest.failf "unexpected outcomes (%d)" (List.length other));
  Audit.detach audit

(* --- DSL surface ------------------------------------------------------------ *)

let test_dsl_policy_roundtrip () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let text =
    "rule Guarded\n\
     on end employee::set_salary\n\
     then noop\n\
     mode detached\n\
     on-error quarantine 3\n\
     retries 2\n\
     monitor class employee\n\
     end\n"
  in
  (match Sentinel.Rule_dsl.load_string sys text with
  | [ oid ] ->
    let r = System.rule_info sys oid in
    Alcotest.(check bool) "policy parsed" true
      (r.Rule.policy = Error_policy.Quarantine 3);
    Alcotest.(check int) "retries parsed" 2 r.Rule.max_retries;
    let rendered = Sentinel.Rule_dsl.render sys oid in
    Alcotest.(check bool) "renders on-error" true
      (contains_substring ~sub:"on-error quarantine 3" rendered);
    Alcotest.(check bool) "renders retries" true
      (contains_substring ~sub:"retries 2" rendered)
  | oids -> Alcotest.failf "expected 1 rule, got %d" (List.length oids));
  check_raises_any "bad threshold" (fun () ->
      Sentinel.Rule_dsl.load_string sys
        "rule X\non end employee::set_salary\nthen noop\non-error quarantine \
         0\nend\n")

let test_error_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Error_policy.of_string (Error_policy.to_string p) = p))
    [ Error_policy.Propagate; Error_policy.Contain; Error_policy.Quarantine 5 ];
  check_raises_any "negative threshold" (fun () ->
      Error_policy.of_string "quarantine:-1");
  check_raises_any "garbage" (fun () -> Error_policy.of_string "explode")

(* --- containment is atomic --------------------------------------------------- *)

(* A contained firing runs in a nested transaction: the partial writes a
   half-finished action made before raising must roll back (they would
   otherwise commit with the host and then be double-applied by replay). *)
let test_contained_failure_rolls_back_partial_writes () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  let armed = ref true in
  System.register_action sys "half-done" (fun db _ ->
      Db.set db e "name" (Value.Str "tainted");
      if !armed then failwith "boom");
  ignore
    (System.create_rule sys ~name:"half" ~policy:Error_policy.Contain
       ~monitor:[ e ] ~event:salary_event ~condition:"true" ~action:"half-done"
       ());
  (match Transaction.atomically db (fun () -> set_salary db e 1.) with
  | Ok () -> ()
  | Error exn -> Alcotest.failf "host aborted: %s" (Printexc.to_string exn));
  Alcotest.check value "host write committed" (Value.Float 1.)
    (Db.get db e "salary");
  Alcotest.check value "partial action write rolled back" (Value.Str "emp")
    (Db.get db e "name");
  (* same containment outside any host transaction *)
  set_salary db e 2.;
  Alcotest.check value "rolled back outside a transaction too" (Value.Str "emp")
    (Db.get db e "name");
  (* fix the fault: replay starts from a clean slate, applies exactly once *)
  armed := false;
  let dls = System.dead_letters sys in
  Alcotest.(check int) "two dead letters" 2 (List.length dls);
  List.iter
    (fun dl ->
      match System.replay_dead_letter sys dl with
      | Ok () -> ()
      | Error exn -> Alcotest.failf "replay: %s" (Printexc.to_string exn))
    dls;
  Alcotest.check value "replay applied the action" (Value.Str "tainted")
    (Db.get db e "name")

(* Tripping the breaker inside a transaction that later aborts must not
   leave the rule silently quarantined/unregistered in memory while the
   rolled-back attributes say it is in service. *)
let test_breaker_reconciles_on_host_abort () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  let rule =
    System.create_rule sys ~name:"bomb" ~policy:(Error_policy.Quarantine 1)
      ~monitor:[ e ] ~event:salary_event ~condition:"true" ~action:"explode" ()
  in
  (match
     Transaction.atomically db (fun () ->
         set_salary db e 1.;
         (* the breaker just tripped inside this transaction *)
         failwith "user abort")
   with
  | Ok () -> Alcotest.fail "should have aborted"
  | Error (Failure msg) -> Alcotest.(check string) "user abort" "user abort" msg
  | Error exn -> Alcotest.failf "unexpected: %s" (Printexc.to_string exn));
  let r = System.rule_info sys rule in
  Alcotest.(check bool) "runtime breaker rolled back" false r.Rule.quarantined;
  Alcotest.(check int) "runtime streak rolled back" 0 r.Rule.failure_streak;
  Alcotest.check value "attribute rolled back" (Value.Bool false)
    (Db.get db rule Sentinel.Sentinel_classes.a_quarantined);
  Alcotest.(check int) "no quarantined rules" 0
    (List.length (System.quarantined_rules sys));
  Alcotest.(check int) "dead letter died with its transaction" 0
    (List.length (System.dead_letters sys));
  (match System.route_index sys with
  | Some route ->
    Alcotest.(check bool) "re-registered in the index" true
      (Events.Route.registered route rule)
  | None -> ());
  (* still in service: the next committed failure trips it for real *)
  set_salary db e 2.;
  Alcotest.(check bool) "tripped durably this time" true r.Rule.quarantined;
  Alcotest.check value "attribute persisted" (Value.Bool true)
    (Db.get db rule Sentinel.Sentinel_classes.a_quarantined);
  Alcotest.(check int) "one committed dead letter" 1
    (List.length (System.dead_letters sys))

(* Eviction inside an aborting transaction: the deletion of the evicted
   entry rolls back, and the cache must report it again. *)
let test_dead_letter_eviction_rolls_back_with_abort () =
  let db = employee_db () in
  let sys = System.create ~dead_letter_limit:1 db in
  let e = new_employee db in
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  ignore
    (System.create_rule sys ~name:"bomb" ~policy:Error_policy.Contain
       ~monitor:[ e ] ~event:salary_event ~condition:"true" ~action:"explode" ());
  set_salary db e 1.;
  let survivor =
    match System.dead_letters sys with
    | [ dl ] -> dl
    | dls -> Alcotest.failf "setup: expected 1 dead letter, got %d"
               (List.length dls)
  in
  (match
     Transaction.atomically db (fun () ->
         (* contained failure: evicts [survivor], appends a fresh entry *)
         set_salary db e 2.;
         failwith "user abort")
   with
  | Error (Failure msg) -> Alcotest.(check string) "user abort" "user abort" msg
  | _ -> Alcotest.fail "should have aborted");
  Alcotest.(check bool) "evicted object restored" true (Db.exists db survivor);
  (match System.dead_letters sys with
  | [ dl ] -> Alcotest.check oid "cache reports the restored entry" survivor dl
  | dls -> Alcotest.failf "expected 1 dead letter, got %d" (List.length dls));
  Alcotest.check value "attempts preserved" (Value.Int 1)
    (Db.get db survivor Sentinel.Sentinel_classes.a_attempts)

(* A deferred firing triggered from inside a contained firing dies with its
   trigger's rollback; deferred firings enqueued later in the same host
   transaction still drain at commit. *)
let test_deferred_trigger_dies_with_contained_firing () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  let notes = ref 0 in
  System.register_action sys "poke-and-raise" (fun db _ ->
      ignore (Db.send db e "change_income" [ Value.Float 9. ]);
      failwith "boom");
  System.register_action sys "note" (fun _ _ -> incr notes);
  ignore
    (System.create_rule sys ~name:"bomb" ~policy:Error_policy.Contain
       ~monitor:[ e ] ~event:salary_event ~condition:"true"
       ~action:"poke-and-raise" ());
  ignore
    (System.create_rule sys ~name:"echo" ~coupling:Coupling.Deferred
       ~monitor:[ e ]
       ~event:(Expr.eom ~cls:"employee" "change_income")
       ~condition:"true" ~action:"note" ());
  (match
     Transaction.atomically db (fun () ->
         (* the contained firing enqueues "echo", then rolls back with it *)
         set_salary db e 1.;
         (* a healthy enqueue in the same host transaction must survive *)
         ignore (Db.send db e "change_income" [ Value.Float 10. ]))
   with
  | Ok () -> ()
  | Error exn -> Alcotest.failf "host aborted: %s" (Printexc.to_string exn));
  Alcotest.(check int) "only the healthy enqueue drained" 1 !notes;
  Alcotest.check value "rolled-back income write undone" (Value.Float 10.)
    (Db.get db e "income")

(* --- instance codec --------------------------------------------------------- *)

let test_instance_codec_roundtrip () =
  let occ1 =
    mk_occ ~source:7 ~cls:"weird,class(name)" ~at:3
      ~params:[ Value.Str "a,b|c"; Value.Int 9; Value.Null ]
      "set_salary" Oodb.Types.After
  in
  let occ2 = mk_occ ~source:8 ~at:5 "promote" Oodb.Types.Before in
  let inst = { Detector.constituents = [ occ1; occ2 ]; t_start = 3; t_end = 5 } in
  let decoded = Codec.decode_instance (Codec.encode_instance inst) in
  Alcotest.(check int) "t_start" inst.Detector.t_start decoded.Detector.t_start;
  Alcotest.(check int) "t_end" inst.Detector.t_end decoded.Detector.t_end;
  Alcotest.(check (list occurrence)) "constituents" inst.Detector.constituents
    decoded.Detector.constituents;
  Alcotest.check occurrence "single occurrence" occ1
    (Codec.decode_occurrence (Codec.encode_occurrence occ1));
  check_raises_any "garbage rejected" (fun () ->
      Codec.decode_instance "inst(1,2,")

(* --- retry backoff: the jittered schedule honours its documented bounds -- *)

let test_retry_delay_bounds () =
  let m attempt = min 0.032 (0.002 *. float_of_int (1 lsl (attempt - 1))) in
  for attempt = 1 to 12 do
    let mid = m attempt in
    (* rand = 0 lands exactly on the lower edge m/2 *)
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "attempt %d: rand=0 is m/2" attempt)
      (mid /. 2.)
      (Error_policy.retry_delay ~rand:(fun () -> 0.) attempt);
    (* rand = 1 lands exactly on the upper edge m *)
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "attempt %d: rand=1 is m" attempt)
      mid
      (Error_policy.retry_delay ~rand:(fun () -> 1.) attempt);
    (* any sample stays inside [m/2, m] *)
    for k = 0 to 10 do
      let r = float_of_int k /. 10. in
      let d = Error_policy.retry_delay ~rand:(fun () -> r) attempt in
      if d < (mid /. 2.) -. 1e-12 || d > mid +. 1e-12 then
        Alcotest.failf "attempt %d rand %.1f: %.6f outside [%.6f, %.6f]"
          attempt r d (mid /. 2.) mid
    done
  done;
  (* growth doubles until the cap, then freezes *)
  Alcotest.(check (float 1e-12)) "attempt 2 doubles attempt 1"
    (2. *. Error_policy.retry_delay ~rand:(fun () -> 1.) 1)
    (Error_policy.retry_delay ~rand:(fun () -> 1.) 2);
  Alcotest.(check (float 1e-12)) "the cap freezes growth"
    (Error_policy.retry_delay ~rand:(fun () -> 1.) 6)
    (Error_policy.retry_delay ~rand:(fun () -> 1.) 60);
  (* out-of-range samples are clamped, not amplified *)
  Alcotest.(check (float 1e-12)) "rand below 0 clamps to the lower edge"
    (Error_policy.retry_delay ~rand:(fun () -> 0.) 3)
    (Error_policy.retry_delay ~rand:(fun () -> -5.) 3);
  Alcotest.(check (float 1e-12)) "rand above 1 clamps to the upper edge"
    (Error_policy.retry_delay ~rand:(fun () -> 1.) 3)
    (Error_policy.retry_delay ~rand:(fun () -> 7.) 3);
  (* custom base/cap: huge attempts cannot overflow past the cap *)
  Alcotest.(check (float 1e-12)) "custom cap bounds huge attempts" 0.5
    (Error_policy.retry_delay ~base:0.1 ~cap:0.5 ~rand:(fun () -> 1.) 1000)

let suite =
  [
    test "90 healthy rules survive 10 broken ones" test_blast_radius;
    test "deferred batch survives contained failure"
      test_deferred_batch_survives_contained_failure;
    test "deferred batch dies under propagate"
      test_deferred_batch_dies_under_propagate;
    test "detached retry until success" test_detached_retry_until_success;
    test "detached retry exhaustion dead-letters"
      test_detached_retry_exhaustion_dead_letters;
    test "quarantine survives rehydrate" test_quarantine_survives_rehydrate;
    test "rule deletes itself from action" test_rule_deletes_itself_from_action;
    test "rule deleted by own condition" test_rule_deleted_by_own_condition;
    test "failure log is bounded" test_failure_log_is_bounded;
    test "dead-letter queue is bounded" test_dead_letter_queue_is_bounded;
    test "audit records containment" test_audit_records_containment;
    test "contained failure rolls back partial writes"
      test_contained_failure_rolls_back_partial_writes;
    test "breaker reconciles on host abort" test_breaker_reconciles_on_host_abort;
    test "dead-letter eviction rolls back with abort"
      test_dead_letter_eviction_rolls_back_with_abort;
    test "deferred trigger dies with contained firing"
      test_deferred_trigger_dies_with_contained_firing;
    test "dsl on-error/retries roundtrip" test_dsl_policy_roundtrip;
    test "error-policy strings" test_error_policy_strings;
    test "instance codec roundtrip" test_instance_codec_roundtrip;
    test "retry backoff honours its bounds" test_retry_delay_bounds;
  ]
