(* The crash-point harness: every byte prefix and every operation-count
   crash of a banking workload log must recover to a committed prefix of
   states — never a torn mix, never a lost fsynced batch, never a batch
   applied twice across a checkpoint crash, and never a [Parse_error]
   escaping [Wal.replay]. *)

open Helpers
module Wal = Oodb.Wal
module Persist = Oodb.Persist
module Verify = Oodb.Verify
module Storage = Oodb.Storage
module Mem = Storage.Mem
module Banking = Workloads.Banking
module Prng = Workloads.Prng

let log_path = "bank.wal"
let snap_path = "bank.db"

let banking_db () =
  let db = Db.create () in
  Banking.install db;
  db

(* Observable state: every live object with class, attributes and
   subscriptions — the equality `Wal.replay` must reproduce. *)
let state db =
  List.concat_map
    (fun cls ->
      List.map
        (fun o -> (Oid.to_int o, cls, Db.attrs db o, Db.consumers_of db o))
        (Db.extent db ~deep:false cls))
    (List.sort compare (Db.classes db))

let atomically db f =
  match Transaction.atomically db f with Ok v -> v | Error e -> raise e

let replay_no_raise ?storage ~at db path =
  try Wal.replay ?storage db path
  with e ->
    Alcotest.failf "replay raised at %s: %s" at (Printexc.to_string e)

(* Run the banking workload against [fs], recording the durable log length
   and observable state at every batch boundary.  Returns the boundaries
   oldest first. *)
let run_workload ?(seed = 42) ?(accounts = 8) ~txns fs =
  let storage = Mem.storage fs in
  let db = banking_db () in
  let boundaries = ref [ (0, state db) ] in
  let record () =
    boundaries :=
      (String.length (Mem.durable fs log_path), state db) :: !boundaries
  in
  let wal = Wal.attach ~storage db log_path in
  record ();
  let rng = Prng.create seed in
  let accts =
    Array.init accounts (fun i ->
        let o =
          Db.new_object db Banking.account_class
            ~attrs:
              [
                ("owner", Value.Str (Printf.sprintf "acct-%d" i));
                ("balance", Value.Float (Prng.float rng 1000.));
              ]
        in
        record ();
        o)
  in
  List.iter
    (fun (acct, meth, args) ->
      atomically db (fun () -> ignore (Db.send db acct meth args));
      record ())
    (Banking.transactions rng accts ~n:txns ());
  Wal.detach wal;
  (db, List.rev !boundaries)

(* --- every byte prefix recovers to a committed prefix of states ---------- *)

let test_every_byte_prefix () =
  let fs = Mem.create () in
  (* writethrough: every byte lands durably, so truncating the file at any
     length is exactly the disk a mid-write crash leaves behind *)
  let _db, boundaries = run_workload ~txns:200 fs in
  let full = Mem.durable fs log_path in
  let len = String.length full in
  Alcotest.(check bool) "workload produced a real log" true (len > 10_000);
  let bnds = Array.of_list boundaries in
  let bi = ref 0 in
  for l = 0 to len do
    while !bi + 1 < Array.length bnds && fst bnds.(!bi + 1) <= l do
      incr bi
    done;
    let fs2 = Mem.create () in
    Mem.set_file fs2 log_path (String.sub full 0 l);
    let db2 = banking_db () in
    ignore
      (replay_no_raise ~storage:(Mem.storage fs2)
         ~at:(Printf.sprintf "prefix %d" l)
         db2 log_path);
    if state db2 <> snd bnds.(!bi) then
      Alcotest.failf
        "prefix %d: recovered state is not the committed prefix at byte %d" l
        (fst bnds.(!bi))
  done;
  (* the whole log replays to the final state *)
  Alcotest.(check bool) "full log reaches the final state" true
    (fst bnds.(Array.length bnds - 1) = len)

(* --- bit flips anywhere past the header stop recovery cleanly ------------ *)

let test_bit_flips_no_escape () =
  let fs = Mem.create () in
  let _db, boundaries = run_workload ~txns:60 fs in
  let full = Mem.durable fs log_path in
  let len = String.length full in
  let states = List.map snd boundaries in
  let b = Bytes.of_string full in
  let header = String.index full '\n' + 1 in
  let i = ref header in
  while !i < len do
    let orig = Bytes.get b !i in
    Bytes.set b !i (Char.chr ((Char.code orig + 1) land 0xff));
    let fs2 = Mem.create () in
    Mem.set_file fs2 log_path (Bytes.to_string b);
    let db2 = banking_db () in
    ignore
      (replay_no_raise ~storage:(Mem.storage fs2)
         ~at:(Printf.sprintf "flip %d" !i)
         db2 log_path);
    if not (List.exists (fun s -> s = state db2) states) then
      Alcotest.failf "flip at %d: recovered to a state never committed" !i;
    Bytes.set b !i orig;
    i := !i + 13
  done;
  (* a payload flip in the final batch is a counted checksum failure *)
  Bytes.set b (len - 4) '~';
  let fs2 = Mem.create () in
  Mem.set_file fs2 log_path (Bytes.to_string b);
  let db2 = banking_db () in
  ignore (replay_no_raise ~storage:(Mem.storage fs2) ~at:"payload flip" db2 log_path);
  Alcotest.(check int) "checksum failure counted" 1
    (Db.stats db2).Oodb.Types.wal_checksum_failures;
  Alcotest.(check int) "corrupt batch discarded" 1
    (Db.stats db2).Oodb.Types.wal_batches_discarded

(* --- with a volatile page cache, fsync makes every commit durable -------- *)

let test_fsync_makes_commits_durable () =
  let fs = Mem.create ~cache:true () in
  let db, boundaries = run_workload ~txns:60 fs in
  (* every boundary was captured from the durable view right after the
     commit returned: each must replay to exactly that committed state *)
  let full = Mem.durable fs log_path in
  List.iter
    (fun (bytes, st) ->
      let fs2 = Mem.create () in
      Mem.set_file fs2 log_path (String.sub full 0 bytes);
      let db2 = banking_db () in
      ignore
        (replay_no_raise ~storage:(Mem.storage fs2)
           ~at:(Printf.sprintf "committed boundary %d" bytes)
           db2 log_path);
      if state db2 <> st then
        Alcotest.failf "committed batch lost at boundary %d" bytes)
    boundaries;
  Alcotest.(check int) "every fsync counted in db stats"
    (Mem.fsyncs fs)
    (Db.stats db).Oodb.Types.wal_fsyncs

(* --- checkpoint: a crash after any operation count recovers exactly ------ *)

let run_to_checkpoint crash_ops =
  let fs = Mem.create ~cache:true () in
  let storage = Mem.storage fs in
  let db = banking_db () in
  let wal = Wal.attach ~storage db log_path in
  let rng = Prng.create 7 in
  let accts =
    Array.init 6 (fun i ->
        Db.new_object db Banking.account_class
          ~attrs:
            [
              ("owner", Value.Str (Printf.sprintf "acct-%d" i));
              ("balance", Value.Float (Prng.float rng 1000.));
            ])
  in
  List.iter
    (fun (acct, meth, args) ->
      atomically db (fun () -> ignore (Db.send db acct meth args)))
    (Banking.transactions rng accts ~n:30 ());
  let committed = state db in
  Mem.crash_after_ops fs crash_ops;
  match Wal.checkpoint wal ~snapshot:snap_path with
  | () -> (fs, db, wal, committed, `Completed)
  | exception Storage.Crash -> (fs, db, wal, committed, `Crashed)

let recover_from fs =
  let fs' = Mem.reboot fs in
  let storage = Mem.storage fs' in
  let db = banking_db () in
  if Mem.durable fs' snap_path <> "" then Persist.load ~storage db snap_path;
  ignore (replay_no_raise ~storage ~at:"post-checkpoint-crash" db log_path);
  db

let max_oid db =
  List.fold_left
    (fun acc (o, _, _, _) -> max acc o)
    0 (state db)

let test_checkpoint_crash_points () =
  let n = ref 0 in
  let completed = ref false in
  while not !completed do
    if !n > 500 then Alcotest.fail "checkpoint never completed";
    let fs, _db, _wal, committed, outcome = run_to_checkpoint !n in
    if outcome = `Completed then completed := true;
    let db2 = recover_from fs in
    Verify.check_exn ~quiescent:true db2;
    if state db2 <> committed then
      Alcotest.failf
        "crash after %d checkpoint ops: recovery lost or double-applied a batch"
        !n;
    (* the OID allocator must come back past every live object *)
    let high = max_oid db2 in
    let fresh = Db.new_object db2 Banking.account_class in
    if Oid.to_int fresh <= high then
      Alcotest.failf "crash after %d ops: fresh OID %d collides (max live %d)"
        !n (Oid.to_int fresh) high;
    incr n
  done;
  Alcotest.(check bool) "enumerated a real operation sequence" true (!n > 10)

(* --- group commit: only whole sealed groups survive a crash -------------- *)

(* Like [run_workload], but commits pass through the group-commit
   coordinator, so the durable length only moves at a seal.  Boundaries are
   recorded when the durable length changed: each is (bytes, state as of
   the last commit the seal covered). *)
let run_grouped_workload ?(seed = 42) ?(accounts = 8) ~txns fs =
  let storage = Mem.storage fs in
  let db = banking_db () in
  let boundaries = ref [ (0, state db) ] in
  let record () =
    let len = String.length (Mem.durable fs log_path) in
    match !boundaries with
    | (l, _) :: _ when l = len -> () (* buffered in the open group *)
    | _ -> boundaries := (len, state db) :: !boundaries
  in
  let wal =
    Wal.attach ~storage
      ~group_commit:{ Wal.max_batch = 4; max_wait_us = max_int }
      db log_path
  in
  record ();
  let rng = Prng.create seed in
  let accts =
    Array.init accounts (fun i ->
        let o =
          Db.new_object db Banking.account_class
            ~attrs:
              [
                ("owner", Value.Str (Printf.sprintf "acct-%d" i));
                ("balance", Value.Float (Prng.float rng 1000.));
              ]
        in
        record ();
        o)
  in
  let commits = ref accounts in
  List.iter
    (fun (acct, meth, args) ->
      atomically db (fun () -> ignore (Db.send db acct meth args));
      incr commits;
      record ())
    (Banking.transactions rng accts ~n:txns ());
  Wal.detach wal;
  record ();
  (!commits, List.rev !boundaries)

let test_group_commit_byte_prefix () =
  let fs = Mem.create () in
  let commits, boundaries = run_grouped_workload ~txns:200 fs in
  let full = Mem.durable fs log_path in
  let len = String.length full in
  (* coalescing really happened: far fewer seal boundaries than commits *)
  let seals = List.length boundaries - 2 (* initial + attach records *) in
  Alcotest.(check bool)
    (Printf.sprintf "%d commits sealed into %d groups" commits seals)
    true
    (seals * 3 < commits);
  let bnds = Array.of_list boundaries in
  let bi = ref 0 in
  for l = 0 to len do
    while !bi + 1 < Array.length bnds && fst bnds.(!bi + 1) <= l do
      incr bi
    done;
    let fs2 = Mem.create () in
    Mem.set_file fs2 log_path (String.sub full 0 l);
    let db2 = banking_db () in
    ignore
      (replay_no_raise ~storage:(Mem.storage fs2)
         ~at:(Printf.sprintf "grouped prefix %d" l)
         db2 log_path);
    (* recovery lands exactly on the greatest seal at or below the crash
       point: commits coalesced into a torn group vanish wholesale *)
    if state db2 <> snd bnds.(!bi) then
      Alcotest.failf
        "grouped prefix %d: recovered state is not the seal boundary at %d" l
        (fst bnds.(!bi))
  done;
  Alcotest.(check bool) "full log reaches the final state" true
    (fst bnds.(Array.length bnds - 1) = len)

(* --- delta checkpoint: a crash after any operation count recovers -------- *)

(* Recovery through the full pipeline: base snapshot + delta chain + WAL
   tail, exactly what a restarted process would run. *)
let recover_full fs =
  let fs' = Mem.reboot fs in
  let storage = Mem.storage fs' in
  let db = banking_db () in
  (try ignore (Wal.recover ~storage db ~snapshot:snap_path ~wal:log_path)
   with e ->
     Alcotest.failf "Wal.recover raised: %s" (Printexc.to_string e));
  db

let run_to_delta_checkpoint crash_ops =
  let fs = Mem.create ~cache:true () in
  let storage = Mem.storage fs in
  let db = banking_db () in
  let wal = Wal.attach ~storage db log_path in
  let rng = Prng.create 11 in
  let accts =
    Array.init 6 (fun i ->
        Db.new_object db Banking.account_class
          ~attrs:
            [
              ("owner", Value.Str (Printf.sprintf "acct-%d" i));
              ("balance", Value.Float (Prng.float rng 1000.));
            ])
  in
  let run n =
    List.iter
      (fun (acct, meth, args) ->
        atomically db (fun () -> ignore (Db.send db acct meth args)))
      (Banking.transactions rng accts ~n ())
  in
  run 20;
  Wal.checkpoint wal ~snapshot:snap_path;
  (* base *)
  run 10;
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  (* delta-1 completed; the crash hits while delta-2 goes down *)
  run 10;
  let committed = state db in
  Mem.crash_after_ops fs crash_ops;
  match Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path with
  | () -> (fs, committed, `Completed)
  | exception Storage.Crash -> (fs, committed, `Crashed)

let test_delta_checkpoint_crash_points () =
  let n = ref 0 in
  let completed = ref false in
  while not !completed do
    if !n > 500 then Alcotest.fail "delta checkpoint never completed";
    let fs, committed, outcome = run_to_delta_checkpoint !n in
    if outcome = `Completed then completed := true;
    let db2 = recover_full fs in
    Verify.check_exn ~quiescent:true db2;
    if state db2 <> committed then
      Alcotest.failf
        "crash after %d delta-checkpoint ops: recovery diverged from committed"
        !n;
    let high = max_oid db2 in
    let fresh = Db.new_object db2 Banking.account_class in
    if Oid.to_int fresh <= high then
      Alcotest.failf "crash after %d ops: fresh OID %d collides (max live %d)"
        !n (Oid.to_int fresh) high;
    incr n
  done;
  Alcotest.(check bool) "enumerated a real operation sequence" true (!n > 2)

(* --- a crash during recovery itself: the second recovery converges ------- *)

(* Recovery reads the base snapshot, the delta chain, then the WAL tail.  A
   process can die mid-recovery too (the supervisor restarts a shard whose
   init is itself recovering); since recovery never writes, an interrupted
   attempt must leave the disk exactly as it found it, and simply running
   recovery again from the top must converge to the committed state. *)
let test_crash_during_recovery () =
  (* build a store with every pipeline stage populated: base + two deltas +
     a live WAL tail *)
  let fs = Mem.create ~cache:true () in
  let storage = Mem.storage fs in
  let db = banking_db () in
  let wal = Wal.attach ~storage db log_path in
  let rng = Prng.create 17 in
  let accts =
    Array.init 6 (fun i ->
        Db.new_object db Banking.account_class
          ~attrs:
            [
              ("owner", Value.Str (Printf.sprintf "acct-%d" i));
              ("balance", Value.Float (Prng.float rng 1000.));
            ])
  in
  let run n =
    List.iter
      (fun (acct, meth, args) ->
        atomically db (fun () -> ignore (Db.send db acct meth args)))
      (Banking.transactions rng accts ~n ())
  in
  run 20;
  Wal.checkpoint wal ~snapshot:snap_path;
  run 10;
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  run 10;
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  run 5;
  Wal.detach wal;
  let committed = state db in
  let durable_view fs =
    List.map (fun p -> (p, Mem.durable fs p)) (Mem.files fs)
  in
  let n = ref 0 in
  let completed = ref false in
  while not !completed do
    if !n > 200 then Alcotest.fail "recovery never completed";
    let fs' = Mem.reboot fs in
    let before = durable_view fs' in
    Mem.crash_after_reads fs' !n;
    let db2 = banking_db () in
    (match
       Wal.recover ~storage:(Mem.storage fs') db2 ~snapshot:snap_path
         ~wal:log_path
     with
    | _ -> completed := true
    | exception Storage.Crash ->
      (* the interrupted attempt is read-only: disk untouched *)
      if durable_view fs' <> before then
        Alcotest.failf "crash after %d reads: recovery mutated the store" !n;
      Mem.clear_faults fs';
      let db3 = banking_db () in
      (match
         Wal.recover ~storage:(Mem.storage fs') db3 ~snapshot:snap_path
           ~wal:log_path
       with
      | _ -> ()
      | exception e ->
        Alcotest.failf "second recovery after %d reads raised: %s" !n
          (Printexc.to_string e));
      Verify.check_exn ~quiescent:true db3;
      if state db3 <> committed then
        Alcotest.failf
          "crash after %d reads: second recovery diverged from committed" !n);
    if !completed && state db2 <> committed then
      Alcotest.failf "uninterrupted recovery diverged from committed";
    incr n
  done;
  Alcotest.(check bool) "enumerated real read crash points" true (!n > 2)

(* --- compaction: a crash after any operation count recovers -------------- *)

let run_to_compact crash_ops =
  let fs = Mem.create ~cache:true () in
  let storage = Mem.storage fs in
  let db = banking_db () in
  let wal = Wal.attach ~storage db log_path in
  let rng = Prng.create 13 in
  let accts =
    Array.init 6 (fun i ->
        Db.new_object db Banking.account_class
          ~attrs:
            [
              ("owner", Value.Str (Printf.sprintf "acct-%d" i));
              ("balance", Value.Float (Prng.float rng 1000.));
            ])
  in
  let run n =
    List.iter
      (fun (acct, meth, args) ->
        atomically db (fun () -> ignore (Db.send db acct meth args)))
      (Banking.transactions rng accts ~n ())
  in
  run 15;
  Wal.checkpoint wal ~snapshot:snap_path;
  run 8;
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  run 8;
  let committed = state db in
  Mem.crash_after_ops fs crash_ops;
  match Wal.compact wal ~snapshot:snap_path with
  | () -> (fs, committed, `Completed)
  | exception Storage.Crash -> (fs, committed, `Crashed)

let test_compaction_crash_points () =
  let n = ref 0 in
  let completed = ref false in
  while not !completed do
    if !n > 500 then Alcotest.fail "compaction never completed";
    let fs, committed, outcome = run_to_compact !n in
    let db2 = recover_full fs in
    Verify.check_exn ~quiescent:true db2;
    if state db2 <> committed then
      Alcotest.failf
        "crash after %d compaction ops: recovery diverged from committed" !n;
    if outcome = `Completed then begin
      completed := true;
      (* the completed compaction truncated the log and removed the chain *)
      let fs' = Mem.reboot fs in
      Alcotest.(check int) "log truncated to the header"
        (String.length "SENTINELWAL 2\n")
        (String.length (Mem.durable fs' log_path));
      Alcotest.(check int) "delta chain removed" 0
        (List.length
           (Wal.delta_files ~storage:(Mem.storage fs') ~snapshot:snap_path ()))
    end;
    incr n
  done;
  Alcotest.(check bool) "enumerated a real operation sequence" true (!n > 2)

(* --- transient write faults are retried, durably ------------------------- *)

let test_transient_faults_retried () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = banking_db () in
  let wal = Wal.attach ~storage db log_path in
  let a = Db.new_object db Banking.account_class in
  Mem.fail_writes fs 2;
  atomically db (fun () -> Db.set db a "balance" (Value.Float 5.));
  Wal.detach wal;
  let db2 = banking_db () in
  Alcotest.(check int) "both batches durable despite the faults" 2
    (replay_no_raise ~storage ~at:"transient" db2 log_path);
  Alcotest.check value "state" (Value.Float 5.) (Db.get db2 a "balance")

(* --- attach repairs a torn tail so later appends stay reachable ---------- *)

let test_attach_repairs_torn_tail () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = banking_db () in
  let wal = Wal.attach ~storage db log_path in
  let a = Db.new_object db Banking.account_class in
  Db.set db a "balance" (Value.Float 20.);
  let good = String.length (Mem.durable fs log_path) in
  Db.set db a "balance" (Value.Float 30.);
  Wal.detach wal;
  let full = Mem.durable fs log_path in
  let fs2 = Mem.create () in
  let storage2 = Mem.storage fs2 in
  Mem.set_file fs2 log_path (String.sub full 0 (good + 7));
  let db2 = banking_db () in
  ignore (replay_no_raise ~storage:storage2 ~at:"torn tail" db2 log_path);
  Alcotest.check value "recovered to the last boundary" (Value.Float 20.)
    (Db.get db2 a "balance");
  let wal2 = Wal.attach ~storage:storage2 db2 log_path in
  Db.set db2 a "balance" (Value.Float 40.);
  Wal.detach wal2;
  let db3 = banking_db () in
  Alcotest.(check int) "repaired log replays whole" 3
    (replay_no_raise ~storage:storage2 ~at:"after repair" db3 log_path);
  Alcotest.check value "append after repair" (Value.Float 40.)
    (Db.get db3 a "balance");
  Verify.check_exn ~quiescent:true db3

let suite =
  [
    test "every byte prefix recovers" test_every_byte_prefix;
    test "bit flips never escape replay" test_bit_flips_no_escape;
    test "fsync makes every commit durable" test_fsync_makes_commits_durable;
    test "checkpoint crash points" test_checkpoint_crash_points;
    test "group commit: every byte prefix recovers"
      test_group_commit_byte_prefix;
    test "delta checkpoint crash points" test_delta_checkpoint_crash_points;
    test "crash during recovery: second recovery converges"
      test_crash_during_recovery;
    test "compaction crash points" test_compaction_crash_points;
    test "transient write faults retried" test_transient_faults_retried;
    test "attach repairs a torn tail" test_attach_repairs_torn_tail;
  ]
