(* Differential testing: for the rule shapes that both engines can express
   — class-level rules on single primitive events with stateless conditions
   — Sentinel (subscription dispatch) and ADAM (centralized scan) must make
   identical firing decisions on identical workloads.  The architectures
   differ; the semantics must not. *)

open Helpers
module Prng = Workloads.Prng

(* A random workload: n messages over a small population of employees and
   managers, each message one of the reactive methods. *)
type spec = {
  sp_seed : int;
  sp_rules : (string * string * Oodb.Types.modifier) list;
      (* active_class, method, modifier *)
  sp_ops : int;
}

let spec_gen =
  let open QCheck2.Gen in
  let rule_gen =
    let* cls = oneofl [ "employee"; "manager" ] in
    let* meth = oneofl [ "set_salary"; "change_income"; "get_age" ] in
    let* modifier = oneofl [ Oodb.Types.Before; Oodb.Types.After ] in
    return (cls, meth, modifier)
  in
  let* sp_seed = int_bound 10_000 in
  let* sp_rules = list_size (int_range 1 6) rule_gen in
  let* sp_ops = int_range 10 200 in
  return { sp_seed; sp_rules; sp_ops }

let build_population db rng =
  let pop = Workloads.Payroll.populate db rng ~managers:3 ~employees:10 in
  Array.append pop.managers pop.employees

let run_ops db rng objs n =
  for _ = 1 to n do
    let target = Prng.choice rng objs in
    match Prng.int rng 3 with
    | 0 -> ignore (Db.send db target "set_salary" [ Value.Float (Prng.float rng 100.) ])
    | 1 ->
      ignore (Db.send db target "change_income" [ Value.Float (Prng.float rng 100.) ])
    | _ -> ignore (Db.send db target "get_age" [])
  done

(* Events only fire for interface-listed (method, modifier) pairs; both
   engines see the same stream, so rules on non-generating pairs fire zero
   times in both. *)

let sentinel_counts spec =
  let db = employee_db () in
  let sys = System.create db in
  let counts = List.map (fun _ -> ref 0) spec.sp_rules in
  List.iteri
    (fun i (cls, meth, modifier) ->
      let cell = List.nth counts i in
      System.register_action sys (Printf.sprintf "count-%d" i) (fun _ _ -> incr cell);
      ignore
        (System.create_rule sys
           ~name:(Printf.sprintf "r%d" i)
           ~monitor_classes:[ cls ]
           ~event:(Expr.prim ~cls modifier meth)
           ~condition:"true"
           ~action:(Printf.sprintf "count-%d" i)
           ()))
    spec.sp_rules;
  let rng = Prng.create spec.sp_seed in
  let objs = build_population db rng in
  run_ops db rng objs spec.sp_ops;
  List.map (fun r -> !r) counts

let adam_counts spec =
  let db = employee_db () in
  let adam = Baselines.Adam.create db in
  let rules =
    List.mapi
      (fun i (cls, meth, modifier) ->
        Baselines.Adam.add_rule adam
          ~name:(Printf.sprintf "r%d" i)
          ~active_class:cls ~meth ~modifier
          ~condition:(fun _ _ -> true)
          ~action:(fun _ _ -> ())
          ())
      spec.sp_rules
  in
  let rng = Prng.create spec.sp_seed in
  let objs = build_population db rng in
  run_ops db rng objs spec.sp_ops;
  List.map Baselines.Adam.fired rules

let prop_engines_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sentinel and adam fire identically" ~count:100
       spec_gen (fun spec -> sentinel_counts spec = adam_counts spec))

(* And a pinned concrete case so a property-shrink failure has a readable
   sibling. *)
let test_concrete_agreement () =
  let spec =
    {
      sp_seed = 7;
      sp_rules =
        [
          ("employee", "set_salary", Oodb.Types.After);
          ("manager", "set_salary", Oodb.Types.After);
          ("employee", "get_age", Oodb.Types.Before);
          ("employee", "set_salary", Oodb.Types.Before); (* never generated *)
        ];
      sp_ops = 500;
    }
  in
  let s = sentinel_counts spec and a = adam_counts spec in
  Alcotest.(check (list int)) "identical firing counts" a s;
  (* sanity: the workload actually fired things *)
  Alcotest.(check bool) "non-trivial" true (List.exists (fun c -> c > 0) s);
  (* bom set_salary is not in the event interface: both silent *)
  Alcotest.(check int) "non-generating pair silent" 0 (List.nth s 3)

(* --- indexed vs broadcast routing ---------------------------------------- *)

(* The discrimination index (System.Indexed, the default) must make exactly
   the same detection decisions as the legacy per-consumer broadcast path:
   identical triggered/fired counts, identical signalled instances
   (constituents and timestamps), and identical occurrence streams at ad-hoc
   handlers — across all four parameter contexts, composite operators,
   class- and instance-level subscriptions, and enable/disable churn. *)

module Context = Events.Context

type rrule = {
  rr_monitor : [ `Class of string | `Inst of int ];
  rr_shape : int;  (* picks the operator shape below *)
  rr_prims : (string * Oodb.Types.modifier) list;  (* three constituents *)
}

type rspec = {
  rs_seed : int;
  rs_context : Context.t;
  rs_rules : rrule list;
  rs_ops : int;
}

let routing_spec_gen =
  let open QCheck2.Gen in
  let prim_gen =
    let* meth = oneofl [ "set_salary"; "change_income"; "get_age"; "get_salary" ] in
    let* modifier = oneofl [ Oodb.Types.Before; Oodb.Types.After ] in
    return (meth, modifier)
  in
  let rule_gen =
    let* rr_monitor =
      oneofl [ `Class "employee"; `Class "manager"; `Inst 0; `Inst 5 ]
    in
    let* rr_shape = int_bound 6 in
    let* rr_prims = list_size (return 3) prim_gen in
    return { rr_monitor; rr_shape; rr_prims }
  in
  let* rs_seed = int_bound 10_000 in
  let* rs_context = oneofl Context.all in
  let* rs_rules = list_size (int_range 1 8) rule_gen in
  let* rs_ops = int_range 20 150 in
  return { rs_seed; rs_context; rs_rules; rs_ops }

let routing_event cls r =
  let p (m, md) = Expr.prim ~cls md m in
  match r.rr_prims with
  | [ a; b; c ] -> (
    match r.rr_shape mod 7 with
    | 0 -> p a
    | 1 -> Expr.seq (p a) (p b)
    | 2 -> Expr.conj (p a) (p b)
    | 3 -> Expr.disj (p a) (p b)
    | 4 -> Expr.any 2 [ p a; p b; p c ]
    | 5 -> Expr.not_between (p a) (p b) (p c)
    | _ ->
      let m, md = a in
      Expr.prim ~cls
        ~filters:
          [ { Expr.pf_index = 0; pf_cmp = Expr.Cgt; pf_value = Value.Float 50. } ]
        md m)
  | _ -> assert false

let routing_run routing spec =
  let db = employee_db () in
  let sys = System.create ~routing db in
  let rng = Prng.create spec.rs_seed in
  let objs = build_population db rng in
  let shapes : (int, (string * int) list list) Hashtbl.t = Hashtbl.create 8 in
  let oids =
    List.mapi
      (fun i r ->
        let action = Printf.sprintf "shape-%d" i in
        System.register_action sys action (fun _ inst ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt shapes i) in
            Hashtbl.replace shapes i (shape inst :: prev));
        let monitor, monitor_classes =
          match r.rr_monitor with
          | `Class c -> ([], [ c ])
          | `Inst k -> ([ objs.(k mod Array.length objs) ], [])
        in
        System.create_rule sys
          ~name:(Printf.sprintf "r%d" i)
          ~context:spec.rs_context ~monitor ~monitor_classes
          ~event:(routing_event "employee" r)
          ~condition:"true" ~action ())
      spec.rs_rules
  in
  (* an ad-hoc handler over the whole hierarchy: wildcard path in indexed
     mode, plain consumer in broadcast mode *)
  let seen = ref [] in
  let collector = System.create_notifiable sys (fun occ -> seen := occ :: !seen) in
  Db.subscribe_class db ~cls:"employee" ~consumer:collector;
  let rng_ops = Prng.create (spec.rs_seed + 1) in
  (* churn one rule's registration mid-run *)
  let victim = List.nth oids (Prng.int rng_ops (List.length oids)) in
  let third = spec.rs_ops / 3 in
  run_ops db rng_ops objs third;
  System.disable sys victim;
  run_ops db rng_ops objs third;
  System.enable sys victim;
  run_ops db rng_ops objs (spec.rs_ops - (2 * third));
  let per_rule =
    List.mapi
      (fun i oid ->
        let ri = System.rule_info sys oid in
        ( ri.Sentinel.Rule.triggered,
          ri.Sentinel.Rule.fired,
          List.rev (Option.value ~default:[] (Hashtbl.find_opt shapes i)) ))
      oids
  in
  (per_rule, List.rev !seen)

let prop_routing_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"indexed and broadcast routing agree" ~count:60
       routing_spec_gen (fun spec ->
         routing_run System.Indexed spec = routing_run System.Broadcast spec))

(* Pinned sibling covering each parameter context with every operator shape
   and both subscription levels. *)
let test_routing_concrete () =
  let rules =
    [
      { rr_monitor = `Class "employee"; rr_shape = 0;
        rr_prims = [ ("set_salary", Oodb.Types.After); ("get_age", Before); ("get_age", After) ] };
      { rr_monitor = `Class "manager"; rr_shape = 1;
        rr_prims = [ ("set_salary", After); ("change_income", After); ("get_age", After) ] };
      { rr_monitor = `Inst 2; rr_shape = 2;
        rr_prims = [ ("set_salary", After); ("get_age", Before); ("get_age", After) ] };
      { rr_monitor = `Class "employee"; rr_shape = 5;
        rr_prims = [ ("change_income", After); ("get_age", Before); ("set_salary", After) ] };
      { rr_monitor = `Inst 0; rr_shape = 6;
        rr_prims = [ ("set_salary", After); ("set_salary", After); ("set_salary", After) ] };
    ]
  in
  List.iter
    (fun ctx ->
      let spec = { rs_seed = 11; rs_context = ctx; rs_rules = rules; rs_ops = 150 } in
      let pi, ci = routing_run System.Indexed spec
      and pb, cb = routing_run System.Broadcast spec in
      let label fmt = Printf.sprintf fmt (Context.to_string ctx) in
      Alcotest.(check bool) (label "%s: per-rule counts and instances") true (pi = pb);
      Alcotest.(check (list occurrence)) (label "%s: handler stream") cb ci;
      Alcotest.(check bool)
        (label "%s: workload non-trivial") true
        (List.exists (fun (t, _, _) -> t > 0) pi))
    Context.all

let suite =
  [
    test "concrete agreement" test_concrete_agreement;
    prop_engines_agree;
    test "indexed and broadcast routing agree (concrete)" test_routing_concrete;
    prop_routing_agree;
  ]
