(* Differential testing for the batched ingestion pipeline: a batch run
   through the vectorized paths — [Db.send_many], [System.ingest],
   [Detector.feed_many], [Shard_pool.ingest] — must be observationally
   identical to N sequential sends: same results, same firing decisions,
   same audit entries, same detector buffer states, same dead-letter
   behavior.  Only the costs may differ, and the coalescing counters must
   prove they do. *)

open Helpers
module Prng = Workloads.Prng
module Audit = Sentinel.Audit
module Shard_pool = Sentinel.Shard_pool

let outcome_tag = function
  | Audit.Fired -> "fired"
  | Audit.Condition_false -> "cond-false"
  | Audit.Aborted m -> "aborted:" ^ m
  | Audit.Action_error e -> "action-error:" ^ Printexc.to_string e
  | Audit.Contained e -> "contained:" ^ Printexc.to_string e
  | Audit.Quarantined e -> "quarantined:" ^ Printexc.to_string e

(* --- send_many / ingest vs sequential sends ------------------------------- *)

(* One fixture, four ways to push the same batch through it. *)
type mode =
  | Sequential  (* N bare sends *)
  | Vectorized  (* Db.send_many *)
  | Txn_sequential  (* N sends under one Transaction.atomically *)
  | Ingest  (* System.ingest: one txn + one coalescing scope *)

type fixture = {
  fx_db : Db.t;
  fx_sys : System.t;
  fx_audit : Audit.t;
  fx_rules : (string * Oid.t) list;
  fx_objs : Oid.t array;
  fx_seen : unit -> (string * int) list;
}

(* Rules covering the delivery paths batching touches: a simple class-level
   rule, a composite with buffer state, a param-filtered primitive, a
   temporal (Plus) registration, and a deferred-coupling rule whose firings
   drain at commit. *)
let fixture ?(extra = fun (_ : System.t) -> []) seed =
  let db = employee_db () in
  let sys = System.create db in
  let audit = Audit.attach sys in
  System.register_action sys "noop" (fun _ _ -> ());
  let mk name ?coupling ?policy event =
    ( name,
      System.create_rule sys ~name ?coupling ?policy
        ~monitor_classes:[ "employee" ] ~event ~condition:"true" ~action:"noop"
        () )
  in
  let e_set = Expr.eom ~cls:"employee" "set_salary" in
  let e_inc = Expr.eom ~cls:"employee" "change_income" in
  let rules =
    [
      mk "simple" e_set;
      mk "pair" (Expr.seq e_set e_inc);
      mk "filtered"
        (Expr.eom ~cls:"employee"
           ~filters:
             [ { Expr.pf_index = 0; pf_cmp = Expr.Cgt; pf_value = Value.Float 50. } ]
           "set_salary");
      mk "late" (Expr.plus e_set 3);
      mk "deferred" ~coupling:Sentinel.Coupling.Deferred e_inc;
    ]
    @ extra sys
  in
  let rng = Prng.create seed in
  let pop = Workloads.Payroll.populate db rng ~managers:2 ~employees:8 in
  let objs = Array.append pop.managers pop.employees in
  let seen = ref [] in
  let collector =
    System.create_notifiable sys (fun (o : Oodb.Occurrence.t) ->
        seen := (o.meth, o.at) :: !seen)
  in
  Db.subscribe_class db ~cls:"employee" ~consumer:collector;
  {
    fx_db = db;
    fx_sys = sys;
    fx_audit = audit;
    fx_rules = rules;
    fx_objs = objs;
    fx_seen = (fun () -> List.rev !seen);
  }

let gen_batch rng objs n =
  List.init n (fun _ ->
      let target = Prng.choice rng objs in
      match Prng.int rng 3 with
      | 0 -> (target, "set_salary", [ Value.Float (Prng.float rng 100.) ])
      | 1 -> (target, "change_income", [ Value.Float (Prng.float rng 100.) ])
      | _ -> (target, "get_age", []))

let push_batch mode fx batch =
  match mode with
  | Sequential ->
    Ok (List.map (fun (o, m, args) -> Db.send fx.fx_db o m args) batch)
  | Vectorized -> Ok (Db.send_many fx.fx_db batch)
  | Txn_sequential ->
    Transaction.atomically fx.fx_db (fun () ->
        List.map (fun (o, m, args) -> Db.send fx.fx_db o m args) batch)
  | Ingest -> System.ingest fx.fx_sys batch

(* The full observable surface of a run: per-event results, per-rule
   counters, the audit log (rule, outcome, detection time, constituent
   shape), the raw occurrence stream at an ad-hoc consumer — and, to expose
   residual detector buffer state, the firing deltas from one extra probe
   event sent after the batch. *)
let observe ?extra mode seed n =
  let fx = fixture ?extra seed in
  let rng = Prng.create (seed + 1) in
  let batch = gen_batch rng fx.fx_objs n in
  let results =
    match push_batch mode fx batch with
    | Ok vs -> `Ok vs
    | Error e -> `Error (Printexc.to_string e)
  in
  ignore (Db.send fx.fx_db fx.fx_objs.(0) "change_income" [ Value.Float 1. ]);
  ignore (Db.send fx.fx_db fx.fx_objs.(1) "set_salary" [ Value.Float 60. ]);
  let per_rule =
    List.map
      (fun (name, oid) ->
        let ri = System.rule_info fx.fx_sys oid in
        (name, ri.Sentinel.Rule.triggered, ri.Sentinel.Rule.fired))
      fx.fx_rules
  in
  let audit =
    List.map
      (fun (e : Audit.entry) ->
        (e.e_rule_name, outcome_tag e.e_outcome, e.e_at, shape e.e_instance))
      (Audit.entries fx.fx_audit)
  in
  let dead = List.length (System.dead_letters fx.fx_sys) in
  (results, per_rule, audit, fx.fx_seen (), dead)

let check_parity ?extra ~reference ~candidate seed n =
  let r = observe ?extra reference seed n
  and c = observe ?extra candidate seed n in
  let (r_res, r_rules, r_audit, r_seen, r_dead) = r
  and (c_res, c_rules, c_audit, c_seen, c_dead) = c in
  Alcotest.(check bool) "results" true (r_res = c_res);
  Alcotest.(check bool) "rule counters" true (r_rules = c_rules);
  Alcotest.(check bool) "audit entries" true (r_audit = c_audit);
  Alcotest.(check bool) "occurrence stream" true (r_seen = c_seen);
  Alcotest.(check int) "dead letters" r_dead c_dead;
  (* the workload must exercise the machinery it claims to compare *)
  Alcotest.(check bool) "non-trivial" true
    (List.exists (fun (_, _, f) -> f > 0) r_rules)

let test_send_many_parity () =
  List.iter
    (fun (seed, n) ->
      check_parity ~reference:Sequential ~candidate:Vectorized seed n)
    [ (3, 1); (5, 2); (7, 40); (11, 97) ]

let test_ingest_parity () =
  List.iter
    (fun (seed, n) ->
      check_parity ~reference:Txn_sequential ~candidate:Ingest seed n)
    [ (3, 1); (5, 2); (7, 40); (11, 97) ]

(* A rule action that (un)registers subscriptions mid-batch must invalidate
   the route-key memo: the spawned rule sees exactly the events a
   sequential run would show it. *)
let test_mid_batch_registration_parity () =
  let extra sys =
    let spawned = ref None in
    System.register_action sys "spawn" (fun _ _ ->
        if !spawned = None then
          spawned :=
            Some
              (System.create_rule sys ~name:"spawned"
                 ~monitor_classes:[ "employee" ]
                 ~event:(Expr.eom ~cls:"employee" "set_salary")
                 ~condition:"true" ~action:"noop" ()));
    [
      ( "spawner",
        System.create_rule sys ~name:"spawner"
          ~monitor_classes:[ "employee" ]
          ~event:(Expr.eom ~cls:"employee" "set_salary")
          ~condition:"true" ~action:"spawn" () );
    ]
  in
  check_parity ~extra ~reference:Txn_sequential ~candidate:Ingest 13 60

(* A mid-batch failure under Contain parks a dead letter and the rest of the
   batch proceeds — identically in both shapes.  Under the default Propagate
   the whole batch transaction rolls back in both. *)
let explode_extra sys =
  System.register_action sys "explode" (fun _ (inst : Detector.instance) ->
      match (List.hd inst.constituents).params with
      | Value.Float f :: _ when f > 90. -> failwith "poison salary"
      | _ -> ());
  [
    ( "fragile",
      System.create_rule sys ~name:"fragile" ~policy:Sentinel.Error_policy.Contain
        ~monitor_classes:[ "employee" ]
        ~event:(Expr.eom ~cls:"employee" "set_salary")
        ~condition:"true" ~action:"explode" () );
  ]

let test_contained_failure_parity () =
  check_parity ~extra:explode_extra ~reference:Txn_sequential ~candidate:Ingest
    17 80;
  (* and the failure actually happened: the batch is long enough that some
     salary draw exceeded the poison threshold *)
  let _, _, _, _, dead = observe ~extra:explode_extra Ingest 17 80 in
  Alcotest.(check bool) "dead letters parked" true (dead > 0)

let test_uncontained_failure_rolls_back () =
  let extra sys =
    System.register_action sys "explode" (fun _ _ -> failwith "boom");
    [
      ( "bomb",
        System.create_rule sys ~name:"bomb"
          ~monitor_classes:[ "employee" ]
          ~event:(Expr.eom ~cls:"employee" "change_income")
          ~condition:"true" ~action:"explode" () );
    ]
  in
  let fx = fixture ~extra 19 in
  let victim = fx.fx_objs.(2) in
  let before = Db.get fx.fx_db victim "salary" in
  let batch =
    [
      (victim, "set_salary", [ Value.Float 55. ]);
      (victim, "change_income", [ Value.Float 1. ]);
      (victim, "set_salary", [ Value.Float 77. ]);
    ]
  in
  (match System.ingest fx.fx_sys batch with
  | Ok _ -> Alcotest.fail "expected the batch to abort"
  | Error _ -> ());
  Alcotest.(check value) "whole batch rolled back" before
    (Db.get fx.fx_db victim "salary")

(* --- route-key coalescing counters ----------------------------------------- *)

let test_coalescing_counters () =
  let fx = fixture 23 in
  let k = 32 in
  let batch =
    List.init k (fun i ->
        ( fx.fx_objs.(i mod Array.length fx.fx_objs),
          "set_salary",
          [ Value.Float (float_of_int i) ] ))
  in
  (match System.ingest fx.fx_sys batch with
  | Ok _ -> ()
  | Error e -> raise e);
  let st = System.stats fx.fx_sys in
  (* every occurrence was delivered inside the batch scope... *)
  Alcotest.(check int) "batch_events" k st.System.batch_events;
  (* ...and all but the first probe of the single distinct route key hit
     the memo *)
  Alcotest.(check int) "coalesced_probes" (k - 1) st.System.coalesced_probes

(* --- Detector.feed_many ----------------------------------------------------- *)

let occ meth at = mk_occ ~at meth Oodb.Types.After
let ea = Expr.eom "a"
let eb = Expr.eom "b"
let ec = Expr.eom "c"

let chunked chunk l =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
      if n = chunk then go (List.rev cur :: acc) [ x ] 1 tl
      else go acc (x :: cur) (n + 1) tl
  in
  go [] [] 0 l

let feed_signals feed_fn expr stream probe =
  let signals = ref [] in
  let d = Detector.create ~on_signal:(fun i -> signals := shape i :: !signals) expr in
  feed_fn d stream;
  let mid = List.length !signals in
  List.iter (Detector.feed d) probe;
  (mid, List.rev !signals)

let test_feed_many_parity () =
  let rng = Prng.create 29 in
  let meths = Array.init 30 (fun _ -> [| "a"; "b"; "c" |].(Prng.int rng 3)) in
  let stream = Array.to_list (Array.mapi (fun i m -> occ m (i + 1)) meths) in
  let probe = [ occ "a" 31; occ "b" 40; occ "c" 55 ] in
  let shapes =
    [
      ("seq", Expr.seq ea eb);
      ("conj", Expr.conj ea eb);
      ("any", Expr.any 2 [ ea; eb; ec ]);
      ("not-between", Expr.not_between ea eb ec);
      ("plus", Expr.plus ea 5);
      ("periodic", Expr.periodic ea 10 ec);
      ("aperiodic", Expr.aperiodic ea eb ec);
    ]
  in
  List.iter
    (fun (name, expr) ->
      let reference =
        feed_signals (fun d -> List.iter (Detector.feed d)) expr stream probe
      in
      List.iter
        (fun chunk ->
          let got =
            feed_signals
              (fun d s -> List.iter (Detector.feed_many d) (chunked chunk s))
              expr stream probe
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: chunk %d matches per-event feed" name chunk)
            true (got = reference))
        [ 1; 4; 7; 30 ];
      (* the temporal shapes must actually signal, or buffer-state parity
         is vacuous *)
      if name = "plus" || name = "periodic" then
        Alcotest.(check bool) (name ^ ": signalled") true
          (snd reference <> []))
    shapes

(* --- cross-shard batching --------------------------------------------------- *)

let n_dom = 4

let mk_pool fired =
  Shard_pool.create ~shards:n_dom
    ~init:(fun _ i ->
      let db = employee_db () in
      let sys = System.create db in
      System.register_action sys "count" (fun _ _ -> incr fired.(i));
      ignore
        (System.create_rule sys ~name:"watch" ~monitor_classes:[ "employee" ]
           ~event:(Expr.eom ~cls:"employee" "set_salary")
           ~condition:"true" ~action:"count" ());
      sys)
    ()

let pool_employees pool =
  Array.concat
    (List.init n_dom (fun i ->
         match
           Shard_pool.run_on pool i (fun sys ->
               Array.init 3 (fun _ -> new_employee (System.db sys)))
         with
         | Ok os -> os
         | Error e -> raise e))

let mk_events objs n =
  List.init n (fun i ->
      ( objs.(i mod Array.length objs),
        "set_salary",
        [ Value.Float (float_of_int i) ] ))

let test_cross_shard_ingest_parity () =
  let fired_a = Array.init n_dom (fun _ -> ref 0) in
  let fired_b = Array.init n_dom (fun _ -> ref 0) in
  let pool_a = mk_pool fired_a and pool_b = mk_pool fired_b in
  let objs_a = pool_employees pool_a and objs_b = pool_employees pool_b in
  let n = 64 in
  List.iter
    (fun (o, m, args) ->
      match Shard_pool.post pool_a o m args with
      | Ok () -> ()
      | Error e -> raise (Shard_pool.Shard_error e))
    (mk_events objs_a n);
  (match Shard_pool.ingest pool_b (mk_events objs_b n) with
  | Ok () -> ()
  | Error e -> raise (Shard_pool.Shard_error e));
  Shard_pool.drain pool_a;
  Shard_pool.drain pool_b;
  for i = 0 to n_dom - 1 do
    Alcotest.(check int)
      (Printf.sprintf "shard %d fired identically" i)
      !(fired_a.(i))
      !(fired_b.(i));
    Alcotest.(check bool)
      (Printf.sprintf "shard %d fired at all" i)
      true
      (!(fired_a.(i)) > 0)
  done;
  let st_a = Shard_pool.stats pool_a and st_b = Shard_pool.stats pool_b in
  Alcotest.(check int) "no failures (per-event pool)" 0
    (Array.fold_left ( + ) 0 st_a.Shard_pool.shard_failed);
  Alcotest.(check int) "no failures (batched pool)" 0
    (Array.fold_left ( + ) 0 st_b.Shard_pool.shard_failed);
  Shard_pool.stop pool_a;
  Shard_pool.stop pool_b

(* The acceptance gate: at batch=64 over 4 shards, the flush path must cut
   mailbox pushes by at least 8x against per-event posting.  Measured before
   any drain so barrier messages stay out of the count. *)
let test_mpsc_push_coalescing () =
  let fired = Array.init n_dom (fun _ -> ref 0) in
  let pool = mk_pool fired in
  let objs = pool_employees pool in
  let n = 64 in
  let pushes () = (Shard_pool.stats pool).Shard_pool.mpsc_pushes in
  Shard_pool.drain pool;
  (* per-event posting: one push per event *)
  let p0 = pushes () in
  List.iter
    (fun (o, m, args) ->
      match Shard_pool.post pool o m args with
      | Ok () -> ()
      | Error e -> raise (Shard_pool.Shard_error e))
    (mk_events objs n);
  let individual = pushes () - p0 in
  Shard_pool.drain pool;
  (* batched posting: one push per destination shard *)
  let b = Shard_pool.batch pool in
  let p1 = pushes () in
  List.iter
    (fun (o, m, args) ->
      match Shard_pool.batch_post b o m args with
      | Ok () -> ()
      | Error e -> raise (Shard_pool.Shard_error e))
    (mk_events objs n);
  (match Shard_pool.flush b with
  | Ok () -> ()
  | Error e -> raise (Shard_pool.Shard_error e));
  let coalesced = pushes () - p1 in
  Shard_pool.drain pool;
  Alcotest.(check int) "per-event posting pushes once per event" n individual;
  Alcotest.(check int) "flush pushes once per destination" n_dom coalesced;
  Alcotest.(check bool)
    (Printf.sprintf "coalescing >= 8x (%d vs %d)" individual coalesced)
    true
    (individual >= 8 * coalesced);
  (* and pool-level ingest is at least as frugal *)
  let p2 = pushes () in
  (match Shard_pool.ingest pool (mk_events objs n) with
  | Ok () -> ()
  | Error e -> raise (Shard_pool.Shard_error e));
  let ingest_pushes = pushes () - p2 in
  Shard_pool.drain pool;
  Alcotest.(check bool) "ingest ships at most one message per shard" true
    (ingest_pushes <= n_dom);
  Shard_pool.stop pool

(* A rejected flush accounts every job it carried: Shed_newest on a full
   inbox sheds the whole vector, job-granularly. *)
let test_flush_backpressure_accounting () =
  let ran = Atomic.make 0 in
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let pool =
    Shard_pool.create ~shards:2 ~inbox_capacity:4 ~backpressure:Shed_newest
      ~init:(fun _ _ -> System.create (employee_db ()))
      ()
  in
  let post_on idx f =
    match Shard_pool.post_on pool idx f with
    | Ok () -> ()
    | Error e -> raise (Shard_pool.Shard_error e)
  in
  post_on 0 (fun _ ->
      Atomic.set started true;
      while not (Atomic.get gate) do
        Unix.sleepf 0.0005
      done);
  while not (Atomic.get started) do
    Unix.sleepf 0.0005
  done;
  (* worker busy on the gate job: these four fill the bounded inbox *)
  for _ = 1 to 4 do
    post_on 0 (fun _ -> ())
  done;
  let b = Shard_pool.batch pool in
  for _ = 1 to 3 do
    match
      Shard_pool.batch_post_on b 0 (fun _ ->
          ignore (Atomic.fetch_and_add ran 1))
    with
    | Ok () -> ()
    | Error e -> raise (Shard_pool.Shard_error e)
  done;
  let shed_before = (Shard_pool.stats pool).Shard_pool.shed in
  (match Shard_pool.flush b with
  | Error (Shard_pool.Overloaded 0) -> ()
  | Ok () -> Alcotest.fail "expected the flush to be shed"
  | Error e -> raise (Shard_pool.Shard_error e));
  let st = Shard_pool.stats pool in
  Alcotest.(check int) "whole vector counted as shed" (shed_before + 3)
    st.Shard_pool.shed;
  Atomic.set gate true;
  Shard_pool.drain pool;
  Alcotest.(check int) "shed jobs never ran" 0 (Atomic.get ran);
  Shard_pool.stop pool

let suite =
  [
    test "send_many matches sequential sends" test_send_many_parity;
    test "ingest matches sends in one transaction" test_ingest_parity;
    test "mid-batch registration invalidates coalescing"
      test_mid_batch_registration_parity;
    test "contained mid-batch failure dead-letters identically"
      test_contained_failure_parity;
    test "uncontained failure rolls the batch back"
      test_uncontained_failure_rolls_back;
    test "route coalescing counters" test_coalescing_counters;
    test "feed_many matches per-event feed" test_feed_many_parity;
    test "cross-shard ingest parity" test_cross_shard_ingest_parity;
    test "cross-shard flush coalesces mailbox pushes" test_mpsc_push_coalescing;
    test "shed flush accounts every job" test_flush_backpressure_accounting;
  ]
