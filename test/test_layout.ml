(* The compiled slot layout: pre-resolved slot handles, schema evolution
   over live slot arrays, the occurrence ordering contract and the
   tail-safety of Db.iter_rev. *)

open Helpers
module Evolution = Oodb.Evolution
module Query = Oodb.Query
module Symbol = Oodb.Symbol

(* --- Occurrence.compare is total over identifying fields ---------------- *)

let test_occurrence_compare_total () =
  let base = mk_occ ~at:5 "credit" Oodb.Types.Before in
  let after = mk_occ ~at:5 "credit" Oodb.Types.After in
  Alcotest.(check bool) "modifier distinguishes" true
    (Oodb.Occurrence.compare base after <> 0);
  Alcotest.(check bool) "begin sorts before end" true
    (Oodb.Occurrence.compare base after < 0);
  let other_class = mk_occ ~cls:"manager" ~at:5 "credit" Oodb.Types.Before in
  Alcotest.(check bool) "source class distinguishes" true
    (Oodb.Occurrence.compare base other_class <> 0);
  Alcotest.(check int) "equal occurrences compare 0" 0
    (Oodb.Occurrence.compare base (mk_occ ~at:5 "credit" Oodb.Types.Before));
  (* antisymmetry on the new fields *)
  Alcotest.(check int) "antisymmetric (modifier)" 0
    (Oodb.Occurrence.compare base after + Oodb.Occurrence.compare after base);
  Alcotest.(check int) "antisymmetric (class)" 0
    (Oodb.Occurrence.compare base other_class
    + Oodb.Occurrence.compare other_class base)

let test_occurrence_symbols_consistent () =
  let o = mk_occ ~cls:"employee" ~at:1 "set_salary" Oodb.Types.After in
  Alcotest.(check string) "meth_sym names meth" o.meth (Symbol.name o.meth_sym);
  Alcotest.(check string) "class_sym names class" o.source_class
    (Symbol.name o.class_sym)

(* --- iter_rev: order and tail safety ------------------------------------ *)

let test_iter_rev_100k () =
  let n = 100_000 in
  let l = List.init n (fun i -> i) in
  (* newest-first storage: iter_rev must visit oldest first *)
  let seen = ref [] and count = ref 0 in
  Db.iter_rev
    (fun x ->
      incr count;
      if !count <= 3 then seen := x :: !seen)
    l;
  Alcotest.(check int) "visits all" n !count;
  Alcotest.(check (list int)) "oldest first" [ n - 3; n - 2; n - 1 ]
    !seen

let test_broadcast_100k_consumers () =
  let db = employee_db () in
  let e = new_employee db in
  (* 100k subscribers via the raw consumers list: Db.subscribe's dedup scan
     is O(n) per call, so building the list through the API would be
     quadratic; broadcast itself must stay linear and stack-safe. *)
  let o = Oodb.Oid.Table.find db.Oodb.Types.objects e in
  o.Oodb.Types.consumers <- List.init 100_000 (fun i -> Oid.of_int (1_000 + i));
  let heard = ref 0 in
  Db.set_notify db (fun _ ~consumer:_ _ -> incr heard);
  Db.signal db ~source:e ~meth:"poke" ~modifier:Oodb.Types.After [];
  Alcotest.(check int) "every consumer notified once" 100_000 !heard

(* --- slot handles -------------------------------------------------------- *)

let test_resolve_and_slot_access () =
  let db = employee_db () in
  let e = new_employee db ~salary:7. in
  let salary = Db.resolve db "employee" "salary" in
  Alcotest.check value "slot_get" (Value.Float 7.) (Db.slot_get db e salary);
  Db.slot_set db e salary (Value.Float 9.);
  Alcotest.check value "visible via strings" (Value.Float 9.)
    (Db.get db e "salary");
  (* prefix invariant: the handle resolved on employee works on manager *)
  let m = new_employee db ~cls:"manager" ~salary:20. in
  Alcotest.check value "works on subclass instance" (Value.Float 20.)
    (Db.slot_get db m salary);
  (match Db.resolve db "employee" "no_such" with
  | _ -> Alcotest.fail "resolved a missing attribute"
  | exception Errors.No_such_attribute _ -> ());
  (* slot writes are undo-logged like string writes *)
  Transaction.begin_ db;
  Db.slot_set db e salary (Value.Float 1000.);
  Transaction.abort db;
  Alcotest.check value "rolled back" (Value.Float 9.) (Db.get db e "salary")

let test_stale_handle_re_resolves () =
  let db = employee_db () in
  let e = new_employee db in
  (* resolve, then shift the layout underneath the handle *)
  let age = Db.resolve db "employee" "age" in
  ignore (Evolution.remove_attribute db ~cls:"employee" ~attr:"name");
  Db.slot_set db e age (Value.Int 44);
  Alcotest.check value "stale handle still lands on the right attribute"
    (Value.Int 44) (Db.get db e "age")

(* --- schema evolution over live slot arrays ------------------------------ *)

(* A populated database: instances of both classes, an index on salary, and
   one object reloaded from a snapshot roundtrip at the end of every
   scenario to prove the change survives persistence. *)
let roundtrip db =
  let db2 = Db.create ~layout:(Db.layout_mode db) () in
  Workloads.Payroll.install db2;
  (* replay the evolution schema changes on the fresh store *)
  db2

let test_evolution_add_under_slots () =
  let db = employee_db () in
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  let e = new_employee db ~salary:5. in
  let m = new_employee db ~cls:"manager" ~salary:6. in
  let touched = Evolution.add_attribute db ~cls:"employee" ~attr:"grade" ~default:(Value.Int 1) in
  Alcotest.(check int) "both instances backfilled" 2 touched;
  Alcotest.check value "backfilled" (Value.Int 1) (Db.get db e "grade");
  Alcotest.check value "subclass backfilled" (Value.Int 1) (Db.get db m "grade");
  Alcotest.(check (list oid)) "index survived the migration" [ e ]
    (Db.index_lookup db ~cls:"employee" ~attr:"salary" (Value.Float 5.));
  Oodb.Verify.check_exn db;
  (* snapshot → reload on a store with the same evolved schema *)
  let db2 = roundtrip db in
  ignore (Evolution.add_attribute db2 ~cls:"employee" ~attr:"grade" ~default:(Value.Int 1));
  Oodb.Persist.of_string db2 (Oodb.Persist.to_string db);
  Alcotest.check value "value survives reload" (Value.Int 1) (Db.get db2 e "grade");
  Alcotest.(check (list oid)) "index rebuilt on reload" [ e ]
    (Db.index_lookup db2 ~cls:"employee" ~attr:"salary" (Value.Float 5.));
  Oodb.Verify.check_exn db2

let test_evolution_remove_under_slots () =
  let db = employee_db () in
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  Db.create_index db ~cls:"employee" ~attr:"name" ();
  let e = new_employee db ~name:"ann" ~salary:5. in
  let touched = Evolution.remove_attribute db ~cls:"employee" ~attr:"name" in
  Alcotest.(check int) "instance touched" 1 touched;
  (match Db.get db e "name" with
  | _ -> Alcotest.fail "removed attribute still readable"
  | exception Errors.No_such_attribute _ -> ());
  Alcotest.(check (list oid)) "dropped attribute's index emptied" []
    (Db.index_lookup db ~cls:"employee" ~attr:"name" (Value.Str "ann"));
  Alcotest.(check (list oid)) "other index intact" [ e ]
    (Db.index_lookup db ~cls:"employee" ~attr:"salary" (Value.Float 5.));
  Oodb.Verify.check_exn db;
  let db2 = roundtrip db in
  ignore (Evolution.remove_attribute db2 ~cls:"employee" ~attr:"name");
  Oodb.Persist.of_string db2 (Oodb.Persist.to_string db);
  Alcotest.check value "remaining attrs survive reload" (Value.Float 5.)
    (Db.get db2 e "salary");
  Oodb.Verify.check_exn db2

let test_evolution_rename_under_slots () =
  let db = employee_db () in
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  let e = new_employee db ~salary:5. in
  let m = new_employee db ~cls:"manager" ~salary:8. in
  let touched = Evolution.rename_attribute db ~cls:"employee" ~attr:"salary" ~into:"pay" in
  Alcotest.(check int) "instances carried" 2 touched;
  Alcotest.check value "value under new name" (Value.Float 5.) (Db.get db e "pay");
  Alcotest.check value "subclass value carried" (Value.Float 8.) (Db.get db m "pay");
  (match Db.get db e "salary" with
  | _ -> Alcotest.fail "old name still readable"
  | exception Errors.No_such_attribute _ -> ());
  (* the index followed the rename, entries intact *)
  Alcotest.(check bool) "index re-keyed" true
    (Db.has_index db ~cls:"employee" ~attr:"pay");
  Alcotest.(check bool) "old index key gone" false
    (Db.has_index db ~cls:"employee" ~attr:"salary");
  Alcotest.(check (list oid)) "index entries survive" [ e ]
    (Db.index_lookup db ~cls:"employee" ~attr:"pay" (Value.Float 5.));
  Oodb.Verify.check_exn db;
  let db2 = roundtrip db in
  ignore (Evolution.rename_attribute db2 ~cls:"employee" ~attr:"salary" ~into:"pay");
  Oodb.Persist.of_string db2 (Oodb.Persist.to_string db);
  Alcotest.check value "renamed value survives reload" (Value.Float 5.)
    (Db.get db2 e "pay");
  Alcotest.(check (list oid)) "re-keyed index rebuilt on reload" [ e ]
    (Db.index_lookup db2 ~cls:"employee" ~attr:"pay" (Value.Float 5.));
  Oodb.Verify.check_exn db2

let test_rename_validation () =
  let db = employee_db () in
  let bad f =
    match f () with
    | _ -> Alcotest.fail "expected Type_error"
    | exception Errors.Type_error _ -> ()
  in
  bad (fun () -> Evolution.rename_attribute db ~cls:"employee" ~attr:"nope" ~into:"x");
  bad (fun () -> Evolution.rename_attribute db ~cls:"employee" ~attr:"salary" ~into:"name");
  bad (fun () -> Evolution.rename_attribute db ~cls:"employee" ~attr:"salary" ~into:"salary");
  (* a name declared by a subclass is also off-limits *)
  Db.define_class db
    (Schema.define "temp" ~super:"employee" ~attrs:[ ("badge", Value.Int 0) ]);
  bad (fun () -> Evolution.rename_attribute db ~cls:"employee" ~attr:"salary" ~into:"badge")

(* --- layout-mode parity --------------------------------------------------- *)

let test_layout_modes_agree () =
  let run layout =
    let db = employee_db ~layout () in
    let e = new_employee db ~name:"ann" ~salary:3. in
    ignore (Db.send db e "set_salary" [ Value.Float 4. ]);
    ignore (Db.send db e "change_income" [ Value.Float 10. ]);
    ignore (Evolution.add_attribute db ~cls:"employee" ~attr:"grade" ~default:(Value.Int 2));
    (Db.attrs db e, Oodb.Persist.to_string db)
  in
  let slots = run `Slots and hashtbl = run `Hashtbl in
  Alcotest.(check bool) "attribute views agree" true (fst slots = fst hashtbl);
  Alcotest.(check string) "snapshots agree byte for byte" (snd hashtbl)
    (snd slots)

(* --- Query.matches probes once per candidate ------------------------------ *)

let test_query_probes_once () =
  let db = employee_db () in
  for i = 1 to 10 do
    ignore (new_employee db ~salary:(float_of_int i))
  done;
  Query.reset_probes ();
  let p =
    Query.And
      ( Query.Ge ("salary", Value.Float 3.),
        Query.And
          (Query.Le ("salary", Value.Float 8.), Query.Has "name") )
  in
  let hits = Query.select db "employee" p in
  Alcotest.(check int) "six match" 6 (List.length hits);
  Alcotest.(check int) "one object fetch per candidate (10 candidates)" 10
    (Query.probes ())

let suite =
  [
    test "occurrence compare is total" test_occurrence_compare_total;
    test "occurrence symbols consistent" test_occurrence_symbols_consistent;
    test "iter_rev handles 100k entries" test_iter_rev_100k;
    test "broadcast reaches 100k consumers" test_broadcast_100k_consumers;
    test "resolve and slot access" test_resolve_and_slot_access;
    test "stale slot handle re-resolves" test_stale_handle_re_resolves;
    test "add attribute under slots" test_evolution_add_under_slots;
    test "remove attribute under slots" test_evolution_remove_under_slots;
    test "rename attribute under slots" test_evolution_rename_under_slots;
    test "rename validation" test_rename_validation;
    test "layout modes agree" test_layout_modes_agree;
    test "query probes once per candidate" test_query_probes_once;
  ]
