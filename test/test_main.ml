let () =
  Alcotest.run "sentinel"
    [
      ("value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("db", Test_db.suite);
      ("transaction", Test_transaction.suite);
      ("btree", Test_btree.suite);
      ("index-query", Test_index_query.suite);
      ("query-parser", Test_query_parser.suite);
      ("persist", Test_persist.suite);
      ("wal", Test_wal.suite);
      ("crash", Test_crash.suite);
      ("evolution", Test_evolution.suite);
      ("gc", Test_gc.suite);
      ("session", Test_session.suite);
      ("verify", Test_verify.suite);
      ("introspect", Test_introspect.suite);
      ("signature", Test_signature.suite);
      ("expr", Test_expr.suite);
      ("detector", Test_detector.suite);
      ("event-graph", Test_event_graph.suite);
      ("rule-system", Test_rule_system.suite);
      ("parser", Test_parser.suite);
      ("param-filters", Test_param_filters.suite);
      ("rule-dsl", Test_rule_dsl.suite);
      ("template", Test_template.suite);
      ("analysis", Test_analysis.suite);
      ("audit", Test_audit.suite);
      ("rehydrate", Test_rehydrate.suite);
      ("baselines", Test_baselines.suite);
      ("workloads", Test_workloads.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("route", Test_route.suite);
      ("differential", Test_differential.suite);
      ("containment", Test_containment.suite);
      ("interactions", Test_interactions.suite);
    ]
