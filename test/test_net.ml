(* The wire layer: frame codec robustness (roundtrip, truncation, CRC
   bit-flips, version mismatch), the TCP server/client pair, and the
   differential guarantee — a batch ingested over the wire produces the
   same firings, audit entries and dead letters as the same batch through
   the in-process [System.ingest]. *)

open Helpers
module Prng = Workloads.Prng
module Audit = Sentinel.Audit
module Shard_pool = Sentinel.Shard_pool
module Frame = Net.Frame
module Server = Net.Server
module Client = Net.Sentinel_client

(* --- frame codec ----------------------------------------------------------- *)

let gen_str = QCheck2.Gen.(string_size ~gen:printable (int_bound 40))

let gen_frame =
  let open QCheck2.Gen in
  let small = int_bound 0xFFFF in
  oneof
    [
      map2 (fun v c -> Frame.Hello { version = v; client = c }) small gen_str;
      map2
        (fun t evs -> Frame.Send_many { trace = t; events = evs })
        nat
        (list_size (int_bound 8) gen_str);
      map3
        (fun n cs e -> Frame.Subscribe { name = n; classes = cs; expr = e })
        gen_str
        (list_size (int_bound 4) gen_str)
        gen_str;
      map (fun id -> Frame.Unsubscribe { sub_id = id }) small;
      map2 (fun c p -> Frame.Query { cls = c; pred = p }) gen_str gen_str;
      return Frame.Drain;
      return Frame.Stats_req;
      map (fun tk -> Frame.Ping { token = tk }) nat;
      map2 (fun v s -> Frame.Hello_ack { version = v; shards = s }) small small;
      map (fun c -> Frame.Ack { count = c }) small;
      map (fun id -> Frame.Sub_ack { sub_id = id }) small;
      map2
        (fun id is -> Frame.Notify { sub_id = id; instances = is })
        small
        (list_size (int_bound 8) gen_str);
      map
        (fun rows -> Frame.Rows { rows })
        (list_size (int_bound 5)
           (triple nat gen_str (list_size (int_bound 4) (pair gen_str gen_str))));
      map (fun n -> Frame.Query_done { total = n }) small;
      return Frame.Drain_done;
      map (fun s -> Frame.Stats { text = s }) gen_str;
      map (fun tk -> Frame.Pong { token = tk }) nat;
      map2 (fun c m -> Frame.Err { code = c; msg = m }) small gen_str;
    ]

let test_frame_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"frame decode . encode = id" ~count:500 gen_frame
       (fun msg -> Frame.decode (Frame.encode msg) = msg))

let test_truncated_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"truncated frames rejected" ~count:100
       QCheck2.Gen.(pair gen_frame (int_bound 1000))
       (fun (msg, cut) ->
         let s = Frame.encode msg in
         let cut = cut mod max 1 (String.length s) in
         match Frame.decode (String.sub s 0 cut) with
         | _ -> false
         | exception Frame.Frame_error _ -> true))

let test_bitflip_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"bit-flipped frames rejected" ~count:300
       QCheck2.Gen.(triple gen_frame (int_bound 10_000) (int_bound 7))
       (fun (msg, pos, bit) ->
         let s = Frame.encode msg in
         let pos = pos mod String.length s in
         let b = Bytes.of_string s in
         Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
         let s' = Bytes.unsafe_to_string b in
         (* any single-bit corruption must fail to decode to the original:
            header flips break magic/flags/length/tag/CRC checks, payload
            flips break the CRC, version-byte flips raise Version_mismatch *)
         match Frame.decode s' with
         | msg' -> msg' <> msg && pos = 5  (* only a tag flip could decode *)
         | exception (Frame.Frame_error _ | Frame.Version_mismatch _) -> true))

let test_event_codec_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wire event codec roundtrips" ~count:300
       QCheck2.Gen.(
         triple (int_bound 100_000)
           (string_size ~gen:printable (int_range 1 20))
           (list_size (int_bound 4)
              (oneof
                 [
                   map (fun f -> Oodb.Value.Float f) (float_bound_inclusive 1e6);
                   map (fun i -> Oodb.Value.Int i) (int_bound 1_000_000);
                   map (fun s -> Oodb.Value.Str s) gen_str;
                 ])))
       (fun (o, m, ps) ->
         let ev = (Oid.of_int o, m, ps) in
         Events.Codec.decode_event (Events.Codec.encode_event ev) = ev))

(* --- server fixtures ------------------------------------------------------- *)

(* A pool whose every shard carries the employee schema, a counting rule on
   set_salary, an audit trail, and [objects] employees. *)
let mk_pool ?(shards = 1) ?(objects = 8) ?(rule = true) () =
  let audits = Array.make shards None in
  let fired = Array.init shards (fun _ -> Atomic.make 0) in
  let pool =
    Shard_pool.create ~shards
      ~init:(fun _pool i ->
        let db = employee_db () in
        let sys = System.create db in
        audits.(i) <- Some (Audit.attach sys);
        System.register_action sys "count" (fun _ _ -> Atomic.incr fired.(i));
        if rule then
          ignore
            (System.create_rule sys ~name:"salary-watch"
               ~monitor_classes:[ "employee" ]
               ~event:(Expr.eom ~cls:"employee" "set_salary")
               ~condition:"true" ~action:"count" ());
        let rng = Prng.create (97 + i) in
        ignore
          (Workloads.Payroll.populate db rng ~managers:1
             ~employees:(max 1 (objects / shards)));
        sys)
      ()
  in
  (pool, fired, audits)

let with_server ?shards ?objects ?rule ?outlet_capacity ?outlet_policy
    ?so_sndbuf f =
  let pool, fired, audits = mk_pool ?shards ?objects ?rule () in
  let server =
    Server.create ?outlet_capacity ?outlet_policy ?so_sndbuf ~pool ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Shard_pool.stop pool)
    (fun () -> f server pool fired audits)

let with_client server f =
  let client =
    Client.connect ~host:"127.0.0.1" ~port:(Server.port server) ()
  in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

(* Poll until the predicate holds or the deadline passes. *)
let eventually ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let employee_oids pool =
  match
    Shard_pool.each pool (fun _ sys ->
        Oodb.Db.extent (System.db sys) "employee")
  with
  | Ok per_shard -> List.concat per_shard
  | Error e -> raise e

(* --- handshake and version mismatch ---------------------------------------- *)

let test_handshake_and_ping () =
  with_server ~shards:2 (fun server _pool _ _ ->
      with_client server (fun client ->
          Alcotest.(check int) "shards" 2 (Client.shards client);
          let rtt = Client.ping client in
          Alcotest.(check bool) "rtt sane" true (rtt >= 0. && rtt < 5.)))

let test_version_mismatch () =
  with_server (fun server _pool _ _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
          ignore
            (Frame.write_fd fd ~version:9
               (Frame.Hello { version = 9; client = "old" }));
          match Frame.read_fd fd with
          | Frame.Err { code; msg }, _ ->
            Alcotest.(check int) "err_version" Frame.err_version code;
            Alcotest.(check bool) "names both versions" true
              (contains_substring ~sub:"protocol 1" msg)
          | frame, _ ->
            Alcotest.failf "expected Err, got tag 0x%02x" (Frame.tag frame)))

let test_client_version_exception () =
  (* the client raises a typed Version_mismatch when the server says no *)
  with_server (fun server _pool _ _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
          (* a well-framed v1 Hello whose payload claims an old version *)
          ignore
            (Frame.write_fd fd (Frame.Hello { version = 9; client = "old" }));
          match Frame.read_fd fd with
          | Frame.Err { code; _ }, _ ->
            Alcotest.(check int) "err_version" Frame.err_version code
          | _ -> Alcotest.fail "expected Err"))

(* --- wire vs in-process differential --------------------------------------- *)

let outcome_tag = function
  | Audit.Fired -> "fired"
  | Audit.Condition_false -> "cond-false"
  | Audit.Aborted m -> "aborted:" ^ m
  | Audit.Action_error e -> "action-error:" ^ Printexc.to_string e
  | Audit.Contained e -> "contained:" ^ Printexc.to_string e
  | Audit.Quarantined e -> "quarantined:" ^ Printexc.to_string e

let gen_batch rng objs n =
  List.init n (fun _ ->
      let target = Prng.choice rng objs in
      match Prng.int rng 3 with
      | 0 -> (target, "set_salary", [ Value.Float (Prng.float rng 100.) ])
      | 1 -> (target, "change_income", [ Value.Float (Prng.float rng 100.) ])
      | _ -> (target, "get_age", []))

(* Everything observable about a run, from the audit trail and counters. *)
let observe_sys sys audit fired =
  let audit_entries =
    List.map
      (fun (e : Audit.entry) -> (e.e_rule_name, outcome_tag e.e_outcome, e.e_at))
      (Audit.entries audit)
  in
  (fired, audit_entries, List.length (System.dead_letters sys))

let test_wire_differential () =
  List.iter
    (fun (seed, n) ->
      (* reference: the same fixture driven through in-process ingest *)
      let ref_obs =
        let db = employee_db () in
        let sys = System.create db in
        let audit = Audit.attach sys in
        let fired = ref 0 in
        System.register_action sys "count" (fun _ _ -> incr fired);
        ignore
          (System.create_rule sys ~name:"salary-watch"
             ~monitor_classes:[ "employee" ]
             ~event:(Expr.eom ~cls:"employee" "set_salary")
             ~condition:"true" ~action:"count" ());
        let rng = Prng.create 97 in
        ignore (Workloads.Payroll.populate db rng ~managers:1 ~employees:8);
        let objs = Array.of_list (Oodb.Db.extent db "employee") in
        let batch = gen_batch (Prng.create seed) objs n in
        (match System.ingest sys batch with
        | Ok _ -> ()
        | Error e -> raise e);
        observe_sys sys audit !fired
      in
      (* candidate: identical fixture behind the server, batch over the wire *)
      let wire_obs =
        with_server ~shards:1 ~objects:8 (fun server pool fired audits ->
            let objs = Array.of_list (employee_oids pool) in
            let batch = gen_batch (Prng.create seed) objs n in
            with_client server (fun client ->
                List.iter (fun ev -> Client.send client ev) batch;
                ignore (Client.flush client);
                Client.drain client);
            Shard_pool.drain pool;
            let sys = Shard_pool.system pool 0 in
            observe_sys sys (Option.get audits.(0)) (Atomic.get fired.(0)))
      in
      let (r_f, r_a, r_d) = ref_obs and (w_f, w_a, w_d) = wire_obs in
      Alcotest.(check int) "firings" r_f w_f;
      Alcotest.(check bool) "audit entries" true (r_a = w_a);
      Alcotest.(check int) "dead letters" r_d w_d;
      Alcotest.(check bool) "non-trivial" true (r_f > 0))
    [ (3, 20); (7, 64); (11, 130) ]

(* --- subscribe / notify ---------------------------------------------------- *)

let test_subscribe_notify () =
  with_server ~shards:2 ~rule:false (fun server pool _ _ ->
      with_client server (fun client ->
          let got = Atomic.make 0 in
          let sub =
            Client.subscribe client ~name:"watch" ~classes:[ "employee" ]
              (Expr.eom ~cls:"employee" "set_salary")
              (fun instances ->
                ignore (Atomic.fetch_and_add got (List.length instances)))
          in
          let objs = employee_oids pool in
          List.iteri
            (fun i oid ->
              Client.send client
                (oid, "set_salary", [ Value.Float (float_of_int (50 + i)) ]))
            objs;
          ignore (Client.flush client);
          Client.drain client;
          let expected = List.length objs in
          Alcotest.(check bool) "all notifications arrive" true
            (eventually (fun () -> Atomic.get got = expected));
          (* after unsubscribe, further events stay silent *)
          Client.unsubscribe client sub;
          List.iter
            (fun oid ->
              Client.send client (oid, "set_salary", [ Value.Float 1. ]))
            objs;
          ignore (Client.flush client);
          Client.drain client;
          Thread.delay 0.1;
          Alcotest.(check int) "no post-unsubscribe notifications" expected
            (Atomic.get got);
          let s = Server.stats server in
          Alcotest.(check int) "subscription gauge back to zero" 0
            s.Server.subscriptions_active))

(* --- query ----------------------------------------------------------------- *)

let test_query_streams_rows () =
  with_server ~shards:2 ~objects:10 (fun server _pool _ _ ->
      with_client server (fun client ->
          let rows = Client.query client ~cls:"employee" ~pred:"true" in
          Alcotest.(check bool) "rows from every shard" true
            (List.length rows >= 10);
          List.iter
            (fun (_oid, cls, attrs) ->
              (* the deep employee extent includes the manager subclass *)
              Alcotest.(check bool) "class" true
                (cls = "employee" || cls = "manager");
              Alcotest.(check bool) "has salary attr" true
                (List.mem_assoc "salary" attrs))
            rows;
          (* bad predicate surfaces as a typed request error *)
          match Client.query client ~cls:"employee" ~pred:"salary >" with
          | _ -> Alcotest.fail "expected Server_error"
          | exception Client.Server_error { code; _ } ->
            Alcotest.(check int) "err_request" Frame.err_request code))

(* --- slow consumer: exact shed accounting ---------------------------------- *)

let test_slow_consumer_shed_accounting () =
  (* Raw subscriber that never reads its socket + tiny outlet + tiny kernel
     send buffer: the writer jams against TCP backpressure, the outlet
     fills, Shed_newest drops the rest — and the books must balance:
     produced = enqueued + shed + parked. *)
  with_server ~rule:false ~outlet_capacity:4 ~outlet_policy:Shard_pool.Shed_newest
    ~so_sndbuf:4096
    (fun server pool _ _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.setsockopt_int fd Unix.SO_RCVBUF 4096;
          Unix.connect fd
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
          ignore
            (Frame.write_fd fd
               (Frame.Hello { version = Frame.version; client = "lazy" }));
          (match Frame.read_fd fd with
          | Frame.Hello_ack _, _ -> ()
          | _ -> Alcotest.fail "expected Hello_ack");
          ignore
            (Frame.write_fd fd
               (Frame.Subscribe
                  {
                    name = "lazy";
                    classes = [ "employee" ];
                    expr =
                      Events.Codec.encode (Expr.eom ~cls:"employee" "set_salary");
                  }));
          (match Frame.read_fd fd with
          | Frame.Sub_ack _, _ -> ()
          | _ -> Alcotest.fail "expected Sub_ack");
          (* now stop reading and bury the subscriber in notifications *)
          let objs = Array.of_list (employee_oids pool) in
          let rng = Prng.create 5 in
          for _ = 1 to 40 do
            let batch =
              List.init 100 (fun _ ->
                  ( Prng.choice rng objs,
                    "set_salary",
                    [ Value.Float (Prng.float rng 100.) ] ))
            in
            match Shard_pool.ingest pool batch with
            | Ok () -> ()
            | Error e -> Alcotest.fail (Shard_pool.error_to_string e)
          done;
          Shard_pool.drain pool;
          let ok =
            eventually (fun () ->
                let s = Server.stats server in
                s.Server.notifications_produced
                = s.Server.notifications_enqueued + s.Server.notifications_shed
                  + s.Server.notifications_parked)
          in
          let s = Server.stats server in
          Alcotest.(check int) "produced covers the whole run" 4000
            s.Server.notifications_produced;
          Alcotest.(check bool) "slow consumer sheds" true
            (s.Server.notifications_shed > 0);
          Alcotest.(check bool)
            (Printf.sprintf "exact accounting: %d = %d + %d + %d"
               s.Server.notifications_produced s.Server.notifications_enqueued
               s.Server.notifications_shed s.Server.notifications_parked)
            true ok))

(* --- reconnection ---------------------------------------------------------- *)

let test_connect_refused_bounded () =
  (* nothing listens here: the client must give up after max_attempts *)
  let t0 = Unix.gettimeofday () in
  (match
     Client.connect ~max_attempts:3
       ~rand:(fun () -> 0.5)
       ~host:"127.0.0.1" ~port:1 ()
   with
  | _ -> Alcotest.fail "expected Connection_failed"
  | exception Client.Connection_failed _ -> ());
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "bounded backoff" true (dt < 2.0)

let test_reconnect_resubscribes () =
  let pool, _fired, _audits = mk_pool ~rule:false () in
  Fun.protect
    ~finally:(fun () -> Shard_pool.stop pool)
    (fun () ->
      let server1 = Server.create ~pool () in
      let port = Server.port server1 in
      let client = Client.connect ~host:"127.0.0.1" ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let got = Atomic.make 0 in
          ignore
            (Client.subscribe client ~classes:[ "employee" ]
               (Expr.eom ~cls:"employee" "set_salary")
               (fun is -> ignore (Atomic.fetch_and_add got (List.length is))));
          Server.stop server1;
          (* same port, fresh server over the same pool: the next request
             reconnects with backoff and re-registers the subscription *)
          let server2 = Server.create ~port ~pool () in
          Fun.protect
            ~finally:(fun () -> Server.stop server2)
            (fun () ->
              let objs = employee_oids pool in
              List.iter
                (fun oid ->
                  Client.send client (oid, "set_salary", [ Value.Float 9. ]))
                objs;
              ignore (Client.flush client);
              Client.drain client;
              let expected = List.length objs in
              Alcotest.(check bool) "notifications after reconnect" true
                (eventually (fun () -> Atomic.get got = expected));
              let s = Client.stats client in
              Alcotest.(check bool) "reconnect counted" true
                (s.Client.reconnects >= 1))))

let suite =
  [
    test_frame_roundtrip;
    test_truncated_rejected;
    test_bitflip_rejected;
    test_event_codec_roundtrip;
    test "handshake and ping" test_handshake_and_ping;
    test "version mismatch gets a typed reply" test_version_mismatch;
    test "in-payload version mismatch rejected" test_client_version_exception;
    test "wire ingest = in-process ingest" test_wire_differential;
    test "subscribe streams notifications" test_subscribe_notify;
    test "query streams rows" test_query_streams_rows;
    test "slow consumer shed accounting is exact"
      test_slow_consumer_shed_accounting;
    test "connection refused is bounded" test_connect_refused_bounded;
    test "reconnect re-registers subscriptions" test_reconnect_resubscribes;
  ]
