(* The observability layer: the bounded ring, the metrics registry's
   histograms, cascade-trace propagation through multi-level cascades
   (including across the deferred gap), the shared failure/audit bounds,
   and a differential check that firing decisions are identical with
   observability on and off. *)

open Helpers
module Coupling = Sentinel.Coupling
module Error_policy = Sentinel.Error_policy
module Audit = Sentinel.Audit
module Ring = Obs.Ring
module Metrics = Obs.Metrics
module Trace = Obs.Trace

(* Enable metrics + tracing around [f], always restoring the disabled state
   so the other suites keep their zero-overhead path. *)
let with_obs f =
  Metrics.enable ();
  Trace.enable ();
  Metrics.reset ();
  Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Trace.disable ())
    f

(* --- ring ----------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Ring.create 8 in
  for i = 0 to 99 do
    Ring.push r i
  done;
  Alcotest.(check (list int))
    "keeps the newest 8, oldest first"
    [ 92; 93; 94; 95; 96; 97; 98; 99 ]
    (Ring.to_list r);
  Alcotest.(check int) "total counts evicted pushes" 100 (Ring.total r);
  Alcotest.(check int) "length is the cap" 8 (Ring.length r);
  Alcotest.(check (list int)) "recent n, oldest first" [ 97; 98; 99 ]
    (Ring.recent r 3);
  Ring.clear r;
  Alcotest.(check int) "clear drops entries" 0 (Ring.length r);
  Alcotest.(check int) "total survives clear" 100 (Ring.total r);
  let z = Ring.create 0 in
  Ring.push z 1;
  Alcotest.(check int) "cap 0 stores nothing" 0 (Ring.length z);
  Alcotest.(check int) "cap 0 still counts" 1 (Ring.total z)

(* dropped counts capacity evictions only: clear empties the ring without
   dropping anything, which is exactly where total - length over-reports *)
let test_ring_dropped () =
  let r = Ring.create 4 in
  for i = 0 to 9 do
    Ring.push r i
  done;
  Alcotest.(check int) "evictions counted" 6 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check int) "clear is not a drop" 6 (Ring.dropped r);
  Alcotest.(check int) "total keeps counting" 10 (Ring.total r);
  Ring.push r 42;
  Alcotest.(check int) "no new drop until full again" 6 (Ring.dropped r);
  Alcotest.(check bool) "total - length would over-report" true
    (Ring.total r - Ring.length r > Ring.dropped r);
  let z = Ring.create 0 in
  Ring.push z 1;
  Alcotest.(check int) "cap 0 drops every push" 1 (Ring.dropped z)

let ring_bound_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"ring holds exactly the newest min(cap,n)"
       ~count:200
       QCheck2.Gen.(pair (int_bound 20) (list_size (int_bound 200) small_int))
       (fun (cap, xs) ->
         let r = Ring.create cap in
         List.iter (Ring.push r) xs;
         let n = List.length xs in
         let kept = min cap n in
         Ring.length r = kept
         && Ring.total r = n
         && Ring.to_list r = List.filteri (fun i _ -> i >= n - kept) xs))

(* --- histograms ----------------------------------------------------------- *)

(* Power-of-two buckets report the upper bound of the matched bucket, so a
   percentile is exact to within a factor of two: 1000 ns lands in
   [512, 1024) -> 1024; 1e6 ns in [2^19, 2^20) -> 1048576. *)
let test_histogram_known () =
  Metrics.reset ();
  let st = Metrics.register ~id:(Oodb.Symbol.intern "test.hist") "test.hist" in
  for _ = 1 to 100 do
    Metrics.observe_ns st 1000.
  done;
  for _ = 1 to 10 do
    Metrics.observe_ns st 1_000_000.
  done;
  Alcotest.(check int) "samples" 110 (Metrics.samples st);
  Alcotest.(check (float 0.)) "p50 bucket bound" 1024. (Metrics.percentile st 50.);
  Alcotest.(check (float 0.)) "p99 bucket bound" 1048576.
    (Metrics.percentile st 99.);
  Alcotest.(check (float 1e-6)) "mean is exact" (10_100_000. /. 110.)
    (Metrics.mean_ns st);
  Alcotest.(check (float 0.)) "max is exact" 1_000_000. (Metrics.max_ns st)

(* The two percentile edges the rank scan used to get wrong: bucket 0 holds
   observations <= 1 ns (upper bound 1, not 2), and the scan must clamp to
   the last populated bucket instead of running off the end of the
   histogram and reporting 2^48 ns. *)
let test_percentile_edges () =
  Metrics.reset ();
  let st =
    Metrics.register ~id:(Oodb.Symbol.intern "test.p.edges") "test.p.edges"
  in
  for _ = 1 to 50 do
    Metrics.observe_ns st 0.5
  done;
  Alcotest.(check (float 0.)) "bucket 0 reports 1 ns" 1.
    (Metrics.percentile st 50.);
  Alcotest.(check (float 0.)) "p100 of sub-ns samples is still 1 ns" 1.
    (Metrics.percentile st 100.);
  Metrics.reset ();
  for _ = 1 to 3 do
    Metrics.observe_ns st 1000.
  done;
  Alcotest.(check (float 0.)) "p100 clamps to the last populated bucket"
    1024.
    (Metrics.percentile st 100.);
  Alcotest.(check (float 0.)) "p0 clamps to rank 1" 1024.
    (Metrics.percentile st 0.)

(* Monotonic clock regression: durations are non-negative and nested spans
   are ordered (child starts after parent, parent outlasts child) — with
   the old wall-clock stamps an NTP step could violate both. *)
let test_monotonic_durations () =
  with_obs (fun () ->
      Trace.set_capacity 1024;
      let outer = Trace.enter "outer" "" in
      let inner = Trace.enter "inner" "" in
      Unix.sleepf 0.002;
      Trace.exit inner;
      Trace.exit outer;
      let find n =
        List.find (fun s -> String.equal s.Trace.sp_name n) (Trace.spans ())
      in
      let o = find "outer" and i = find "inner" in
      Alcotest.(check bool) "inner duration >= slept time" true
        (i.Trace.sp_dur >= 1_500.);
      Alcotest.(check bool) "durations non-negative" true
        (o.Trace.sp_dur >= 0. && i.Trace.sp_dur >= 0.);
      Alcotest.(check bool) "child starts after parent" true
        (i.Trace.sp_ts >= o.Trace.sp_ts);
      Alcotest.(check bool) "parent outlasts child" true
        (o.Trace.sp_dur >= i.Trace.sp_dur);
      (* the raw clock never goes backwards *)
      let prev = ref (Obs.Clock.now_ns ()) in
      for _ = 1 to 10_000 do
        let t = Obs.Clock.now_ns () in
        if t < !prev then Alcotest.fail "monotonic clock went backwards";
        prev := t
      done)

let test_histogram_timed () =
  with_obs (fun () ->
      let st =
        Metrics.register ~id:(Oodb.Symbol.intern "test.sleep") "test.sleep"
      in
      let t0 = Metrics.enter st in
      Unix.sleepf 0.005;
      Metrics.exit st t0;
      Alcotest.(check int) "counted" 1 (Metrics.count st);
      Alcotest.(check int) "sampled" 1 (Metrics.samples st);
      let p50 = Metrics.percentile st 50. in
      Alcotest.(check bool)
        (Printf.sprintf "a 5ms sleep lands in a plausible bucket (got %.0f)" p50)
        true
        (p50 >= 5e6 && p50 <= 8e7))

(* --- cascade tracing ------------------------------------------------------ *)

let source_of (inst : Detector.instance) =
  (List.hd inst.Detector.constituents).Oodb.Occurrence.source

(* One send, three levels: set_salary fires level1 (action cascades a
   change_income send), which completes level2's Sequence composite and
   fires level3, whose action fails under Contain.  Every span — both
   sends, routing, detection, the firings and the "contained" marker —
   must carry the trace id assigned at the outermost send, and the audit
   entries must join to it. *)
let test_cascade_trace () =
  let db = employee_db () in
  let sys = System.create db in
  let audit = Audit.attach sys in
  let e = new_employee db in
  System.register_action sys "bump" (fun db inst ->
      ignore (Db.send db (source_of inst) "change_income" [ Value.Float 1. ]));
  System.register_action sys "noop" (fun _ _ -> ());
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  ignore
    (System.create_rule sys ~name:"level1" ~monitor_classes:[ "employee" ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"bump" ());
  ignore
    (System.create_rule sys ~name:"level2-seq" ~monitor_classes:[ "employee" ]
       ~event:
         (Expr.seq
            (Expr.eom ~cls:"employee" "set_salary")
            (Expr.eom ~cls:"employee" "change_income"))
       ~condition:"true" ~action:"noop" ());
  ignore
    (System.create_rule sys ~name:"level3-bomb" ~monitor_classes:[ "employee" ]
       ~policy:Error_policy.Contain
       ~event:(Expr.eom ~cls:"employee" "change_income")
       ~condition:"true" ~action:"explode" ());
  with_obs (fun () ->
      ignore (Db.send db e "set_salary" [ Value.Float 9. ]);
      let spans = Trace.spans () in
      Alcotest.(check bool) "spans recorded" true (spans <> []);
      let tr = (List.hd spans).Trace.sp_trace in
      Alcotest.(check bool) "every span shares the root trace id" true
        (List.for_all (fun s -> s.Trace.sp_trace = tr) spans);
      let names = List.map (fun s -> s.Trace.sp_name) spans in
      let count n = List.length (List.filter (String.equal n) names) in
      Alcotest.(check bool) "the cascaded send is in the trace" true
        (count "send" >= 2);
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " span present") true (count n >= 1))
        [ "send"; "route"; "detect"; "fire"; "contained" ];
      Alcotest.(check int) "find_trace returns the whole cascade"
        (List.length spans)
        (List.length (Trace.find_trace tr));
      let entries = Audit.entries audit in
      Alcotest.(check bool) "audit recorded the firings" true (entries <> []);
      List.iter
        (fun (en : Audit.entry) ->
          Alcotest.(check int) "audit entry joins to the trace" tr
            en.Audit.e_trace)
        entries);
  Audit.detach audit

(* A deferred firing runs at commit, outside the triggering send's dynamic
   extent; the captured trace id must carry across, adding "defer",
   "schedule" and "fire" spans to the same cascade. *)
let test_deferred_schedule_span () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db in
  let ran = ref 0 in
  System.register_action sys "tick" (fun _ _ -> incr ran);
  ignore
    (System.create_rule sys ~name:"later" ~coupling:Coupling.Deferred
       ~monitor_classes:[ "employee" ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"tick" ());
  with_obs (fun () ->
      (match
         Transaction.atomically db (fun () ->
             ignore (Db.send db e "set_salary" [ Value.Float 1. ]))
       with
      | Ok () -> ()
      | Error exn -> raise exn);
      Alcotest.(check int) "rule ran at commit" 1 !ran;
      let spans = Trace.spans () in
      let root =
        List.find (fun s -> String.equal s.Trace.sp_name "send") spans
      in
      let in_trace = Trace.find_trace root.Trace.sp_trace in
      let names = List.map (fun s -> s.Trace.sp_name) in_trace in
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (n ^ " belongs to the triggering send's trace")
            true (List.mem n names))
        [ "send"; "defer"; "schedule"; "fire" ])

(* --- shared bounds: failure log and audit --------------------------------- *)

let hammer ~failure_log_limit ~audit_limit ~n =
  let db = employee_db () in
  let sys =
    System.create ~failure_log_limit ~dead_letter_limit:8
      ~retry_backoff:(fun _ -> ())
      db
  in
  let audit = Audit.attach ~limit:audit_limit sys in
  let e = new_employee db in
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  ignore
    (System.create_rule sys ~name:"bomb" ~policy:Error_policy.Contain
       ~monitor_classes:[ "employee" ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"explode" ());
  for i = 1 to n do
    ignore (Db.send db e "set_salary" [ Value.Float (float_of_int i) ])
  done;
  let failures = List.length (System.recent_failures sys)
  and entries = List.length (Audit.entries audit)
  and total = Audit.count audit
  and contained = (System.stats sys).System.contained_failures in
  Audit.detach audit;
  (failures, entries, total, contained)

let test_failure_bounds () =
  let failures, entries, total, contained =
    hammer ~failure_log_limit:64 ~audit_limit:50 ~n:10_000
  in
  Alcotest.(check int) "failure log capped at its limit" 64 failures;
  Alcotest.(check int) "audit capped at its limit" 50 entries;
  Alcotest.(check int) "audit total counts every attempt" 10_000 total;
  Alcotest.(check int) "every firing was contained" 10_000 contained

let bounds_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"failure log and audit never exceed their bounds" ~count:20
       QCheck2.Gen.(
         triple (int_range 1 16) (int_range 1 16) (int_range 1 120))
       (fun (flim, alim, n) ->
         let failures, entries, total, _ =
           hammer ~failure_log_limit:flim ~audit_limit:alim ~n
         in
         failures <= flim && entries <= alim && total = n))

(* --- differential: observability must not change semantics ---------------- *)

let scenario_fired name ~obs =
  let db = Db.create () in
  let sys = System.create db in
  Workloads.Payroll.install db;
  Workloads.Stock_market.install db;
  Workloads.Hospital.install db;
  Workloads.Banking.install db;
  let rng = Workloads.Prng.create 11 in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  let run () =
    match name with
    | "market" ->
      let market =
        Workloads.Stock_market.populate db rng ~stocks:20 ~indexes:3
          ~portfolios:5
      in
      ignore
        (System.create_rule sys ~name:"w"
           ~monitor_classes:[ Workloads.Stock_market.stock_class ]
           ~event:(Expr.eom ~cls:Workloads.Stock_market.stock_class "set_price")
           ~condition:"true" ~action:"count" ());
      Workloads.Dsl.apply_ops db (Workloads.Stock_market.ticks rng market ~n:400)
    | "payroll" ->
      let pop = Workloads.Payroll.populate db rng ~managers:2 ~employees:20 in
      ignore
        (System.create_rule sys ~name:"w"
           ~monitor_classes:[ Workloads.Payroll.employee_class ]
           ~event:(Expr.eom ~cls:Workloads.Payroll.employee_class "set_salary")
           ~condition:"true" ~action:"count" ());
      Workloads.Dsl.apply_ops db
        (Workloads.Payroll.salary_updates rng pop ~n:400)
    | "hospital" ->
      let ward =
        Workloads.Hospital.populate db rng ~patients:20 ~physicians:3
      in
      ignore
        (System.create_rule sys ~name:"w"
           ~monitor_classes:[ Workloads.Hospital.patient_class ]
           ~event:(Expr.eom ~cls:Workloads.Hospital.patient_class "record_vitals")
           ~condition:"true" ~action:"count" ());
      Workloads.Dsl.apply_ops db
        (Workloads.Hospital.vitals_stream rng ward ~n:400 ())
    | "banking" ->
      let accounts = Workloads.Banking.populate db rng ~accounts:20 in
      ignore
        (System.create_rule sys ~name:"w"
           ~monitor_classes:[ Workloads.Banking.account_class ]
           ~event:
             (Expr.seq
                (Expr.eom ~cls:Workloads.Banking.account_class "deposit")
                (Expr.bom ~cls:Workloads.Banking.account_class "withdraw"))
           ~condition:"true" ~action:"count" ());
      Workloads.Dsl.apply_ops db
        (Workloads.Banking.transactions rng accounts ~n:400 ())
    | other -> Alcotest.failf "unknown scenario %s" other
  in
  if obs then with_obs run else run ();
  !fired

let test_differential_firing () =
  List.iter
    (fun name ->
      let off = scenario_fired name ~obs:false in
      let on = scenario_fired name ~obs:true in
      Alcotest.(check bool) (name ^ ": scenario fires at all") true (off > 0);
      Alcotest.(check int)
        (name ^ ": same firing count with observability on")
        off on)
    [ "market"; "payroll"; "hospital"; "banking" ]

let suite =
  [
    test "ring wraparound" test_ring_wraparound;
    test "ring dropped counts evictions, not clears" test_ring_dropped;
    ring_bound_prop;
    test "histogram percentiles from known durations" test_histogram_known;
    test "percentile edges: bucket 0 and rank clamp" test_percentile_edges;
    test "monotonic clock: durations non-negative and ordered"
      test_monotonic_durations;
    test "histogram times a real wait" test_histogram_timed;
    test "cascade trace spans share one id" test_cascade_trace;
    test "deferred firing keeps its trace" test_deferred_schedule_span;
    test "10k contained failures stay bounded" test_failure_bounds;
    bounds_prop;
    test "firing counts unchanged by observability" test_differential_firing;
  ]
