(* Domain-parallelism: the symbol table under concurrent interning, the
   shard pool (send/fire/commit across 4 shards with per-shard WAL
   recovery), and a cross-shard cascade whose trace id survives the hop. *)

open Helpers
module Symbol = Oodb.Symbol
module Wal = Oodb.Wal
module Shard_pool = Sentinel.Shard_pool
module Trace = Obs.Trace

let n_domains = 4

(* post now returns a typed result; in these tests every send must be
   accepted, so surface a rejection as a test failure. *)
let post_exn pool o meth args =
  match Shard_pool.post pool o meth args with
  | Ok () -> ()
  | Error e -> raise (Shard_pool.Shard_error e)

(* --- concurrent interning -------------------------------------------------- *)

(* Each property run gets a fresh namespace so every iteration really
   exercises the write path, not just snapshot reads. *)
let intern_run = ref 0

(* Rotate so the domains race on the same strings in different orders. *)
let rotate k xs =
  let n = List.length xs in
  if n = 0 then xs
  else
    let k = k mod n in
    let tail = List.filteri (fun i _ -> i >= k) xs
    and head = List.filteri (fun i _ -> i < k) xs in
    tail @ head

let intern_worker strs () =
  List.map
    (fun s ->
      let id = Symbol.intern s in
      (* read back immediately: a torn rev array would surface here *)
      if not (String.equal (Symbol.name id) s) then
        failwith ("torn read: " ^ s);
      (* probe ids other domains are publishing concurrently: name must
         never raise or return garbage for any id below count *)
      let c = Symbol.count () in
      for i = c - 4 to c - 1 do
        if i >= 0 && String.length (Symbol.name i) = 0 then
          failwith "empty name below count"
      done;
      (s, id))
    strs

let intern_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"concurrent intern agrees across 4 domains"
       ~count:10
       QCheck2.Gen.(
         list_size (int_range 1 50)
           (string_size ~gen:(char_range 'a' 'z') (int_range 1 10)))
       (fun raw ->
         incr intern_run;
         let ns = Printf.sprintf "par%d/" !intern_run in
         let strs = List.map (fun s -> ns ^ s) raw in
         let doms =
           Array.init n_domains (fun k ->
               Domain.spawn (intern_worker (rotate k strs)))
         in
         let results = Array.map Domain.join doms in
         let reference = Hashtbl.create 64 in
         List.iter
           (fun (s, id) -> Hashtbl.replace reference s id)
           results.(0);
         Array.for_all
           (fun pairs ->
             List.for_all
               (fun (s, id) ->
                 Hashtbl.find_opt reference s = Some id
                 && String.equal (Symbol.name id) s)
               pairs)
           results))

(* --- 4-shard send/fire/commit with per-shard WAL recovery ------------------ *)

let with_shard_wals n f =
  let paths =
    Array.init n (fun i -> Filename.temp_file (Printf.sprintf "shard%d" i) ".wal")
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths)
    (fun () -> f paths)

let count_action sys counter =
  System.register_action sys "count" (fun _ _ -> incr counter)

let test_shard_pool_wal_smoke () =
  with_shard_wals n_domains (fun paths ->
      let fired = Array.init n_domains (fun _ -> ref 0) in
      let wals = Array.make n_domains None in
      let pool =
        Shard_pool.create ~shards:n_domains
          ~init:(fun _pool i ->
            let db = employee_db () in
            let sys = System.create db in
            (* attach before creating rules: rule objects live in the store
               and their firings update them, so replay needs their creates *)
            wals.(i) <- Some (Wal.attach db paths.(i));
            count_action sys fired.(i);
            ignore
              (System.create_rule sys ~name:"raise-watch"
                 ~monitor_classes:[ "employee" ]
                 ~event:(Expr.eom ~cls:"employee" "set_salary")
                 ~condition:"true" ~action:"count" ());
            sys)
          ()
      in
      (* create a handful of objects on every shard; the routing invariant
         says their OIDs must fall in the shard's residue class *)
      let oids =
        Array.init n_domains (fun i ->
            match
              Shard_pool.run_on pool i (fun sys ->
                  List.init 5 (fun _ -> new_employee (System.db sys)))
            with
            | Ok os -> os
            | Error e -> raise e)
      in
      Array.iteri
        (fun i os ->
          List.iter
            (fun o ->
              Alcotest.(check int)
                "OID residue matches owning shard" i
                (Oid.to_int o mod n_domains);
              Alcotest.(check int)
                "shard_of routes to the allocator" i
                (Shard_pool.shard_of pool o))
            os)
        oids;
      (* fire rules and commit state through the pool, routed by OID *)
      Array.iter
        (fun os ->
          List.iteri
            (fun k o ->
              post_exn pool o "set_salary"
                [ Value.Float (100. +. float_of_int k) ])
            os)
        oids;
      Shard_pool.drain pool;
      Array.iteri
        (fun i r ->
          Alcotest.(check int)
            (Printf.sprintf "shard %d fired once per send" i)
            5 !r)
        fired;
      let st = Shard_pool.stats pool in
      Alcotest.(check int) "no contained failures" 0
        (Array.fold_left ( + ) 0 st.Shard_pool.shard_failed);
      (* flush and close each shard's log on its own domain *)
      for i = 0 to n_domains - 1 do
        match
          Shard_pool.run_on pool i (fun _ ->
              match wals.(i) with Some w -> Wal.detach w | None -> ())
        with
        | Ok () -> ()
        | Error e -> raise e
      done;
      Shard_pool.stop pool;
      (* per-shard recovery: each WAL replays into a fresh store and must
         reproduce exactly that shard's objects and final salaries *)
      Array.iteri
        (fun i os ->
          let db2 = employee_db () in
          let _sys2 = System.create db2 in
          ignore (Wal.replay db2 paths.(i));
          Db.configure_shard db2 ~index:i ~of_:n_domains;
          List.iteri
            (fun k o ->
              Alcotest.(check bool) "object recovered" true (Db.exists db2 o);
              Alcotest.check value "committed salary recovered"
                (Value.Float (100. +. float_of_int k))
                (Db.get db2 o "salary"))
            os;
          (* allocation resumes in the shard's residue class *)
          let fresh = new_employee db2 in
          Alcotest.(check int) "post-recovery OID keeps the residue" i
            (Oid.to_int fresh mod n_domains))
        oids)

(* --- cross-shard cascade keeps its trace id -------------------------------- *)

let test_cross_shard_trace () =
  let partner = Array.make 1 (Oid.of_int 0) in
  let pool = ref None in
  let p () = match !pool with Some p -> p | None -> assert false in
  let created =
    Shard_pool.create ~shards:n_domains
      ~init:(fun _ i ->
        let db = employee_db () in
        let sys = System.create db in
        System.register_action sys "forward" (fun _ _ ->
            (* hop shards: the partner lives in a different residue class *)
            post_exn (p ()) partner.(0) "change_income" [ Value.Float 1. ]);
        System.register_action sys "noop" (fun _ _ -> ());
        ignore
          (System.create_rule sys
             ~name:(Printf.sprintf "hop-out-%d" i)
             ~monitor_classes:[ "employee" ]
             ~event:(Expr.eom ~cls:"employee" "set_salary")
             ~condition:"true" ~action:"forward" ());
        ignore
          (System.create_rule sys
             ~name:(Printf.sprintf "hop-in-%d" i)
             ~monitor_classes:[ "employee" ]
             ~event:(Expr.eom ~cls:"employee" "change_income")
             ~condition:"true" ~action:"noop" ());
        sys)
      ()
  in
  pool := Some created;
  let pool = created in
  let mk shard =
    match Shard_pool.run_on pool shard (fun sys -> new_employee (System.db sys))
    with
    | Ok o -> o
    | Error e -> raise e
  in
  let src = mk 1 in
  partner.(0) <- mk 3;
  Trace.set_capacity 4096;
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      post_exn pool src "set_salary" [ Value.Float 9. ];
      Shard_pool.drain pool;
      Shard_pool.stop pool;
      let spans = Trace.spans () in
      let fires label =
        List.filter
          (fun s ->
            String.equal s.Trace.sp_name "fire"
            && Helpers.contains_substring ~sub:label s.Trace.sp_label)
          spans
      in
      match (fires "hop-out", fires "hop-in") with
      | out :: _, inn :: _ ->
        Alcotest.(check bool) "spans on both sides of the hop" true true;
        Alcotest.(check int) "trace id survives the shard hop"
          out.Trace.sp_trace inn.Trace.sp_trace;
        Alcotest.(check bool) "trace id is a real cascade" true
          (out.Trace.sp_trace > 0)
      | _ -> Alcotest.fail "expected fire spans on both shards")

(* --- job-boundary containment ---------------------------------------------- *)

let test_shard_failure_contained () =
  let pool =
    Shard_pool.create ~shards:2
      ~init:(fun _ _ ->
        let db = employee_db () in
        System.create db)
      ()
  in
  let ok = ref false in
  (match Shard_pool.post_on pool 0 (fun _ -> failwith "poison") with
  | Ok () -> ()
  | Error e -> raise (Shard_pool.Shard_error e));
  (match Shard_pool.post_on pool 0 (fun _ -> ok := true) with
  | Ok () -> ()
  | Error e -> raise (Shard_pool.Shard_error e));
  Shard_pool.drain pool;
  Alcotest.(check bool) "shard survives a poison job" true !ok;
  let st = Shard_pool.stats pool in
  Alcotest.(check int) "failure counted on shard 0" 1
    st.Shard_pool.shard_failed.(0);
  (match Shard_pool.recent_failures pool with
  | (0, e) :: _
    when contains_substring ~sub:"poison" (Printexc.to_string e) ->
    ()
  | _ -> Alcotest.fail "poison job missing from the failure log");
  Shard_pool.stop pool

let suite =
  [
    intern_prop;
    test "4-shard send/fire/commit with per-shard WAL recovery"
      test_shard_pool_wal_smoke;
    test "cross-shard cascade keeps one trace id" test_cross_shard_trace;
    test "poison job is contained per shard" test_shard_failure_contained;
  ]
