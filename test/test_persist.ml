open Helpers
module Persist = Oodb.Persist

let test_value_codec_cases () =
  let roundtrip v =
    Alcotest.check value (Value.to_string v) v
      (Persist.decode_value (Persist.encode_value v))
  in
  roundtrip Value.Null;
  roundtrip (Value.Bool true);
  roundtrip (Value.Bool false);
  roundtrip (Value.Int 0);
  roundtrip (Value.Int (-123456));
  roundtrip (Value.Float 3.14159);
  roundtrip (Value.Float (-0.0));
  roundtrip (Value.Float infinity);
  roundtrip (Value.Str "");
  roundtrip (Value.Str "hello world");
  roundtrip (Value.Str "commas, (parens) %percent% and\nnewlines\ttabs");
  roundtrip (Value.Obj (Oid.of_int 42));
  roundtrip (Value.List []);
  roundtrip (Value.List [ Value.Int 1; Value.Str "a,b"; Value.List [ Value.Null ] ])

let test_value_codec_errors () =
  let bad s =
    match Persist.decode_value s with
    | _ -> Alcotest.failf "%S should not decode" s
    | exception Errors.Parse_error _ -> ()
  in
  bad "";
  bad "x";
  bad "i:abc";
  bad "b:x";
  bad "l(";
  bad "l(n";
  bad "i:1 trailing";
  bad "s:%zz"

let prop_value_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"value codec roundtrip" ~count:300
       Test_value.value_gen (fun v ->
         Value.equal v (Persist.decode_value (Persist.encode_value v))))

let populated_db () =
  let db, sys, collector, _ = sys_with_collector () in
  ignore sys;
  let e1 = new_employee db ~name:"ann" ~salary:1500. in
  let e2 = new_employee db ~cls:"manager" ~name:"mgr" ~salary:9000. in
  Db.set db e1 "mgr" (Value.Obj e2);
  Db.subscribe db ~reactive:e1 ~consumer:collector;
  Db.subscribe_class db ~cls:"manager" ~consumer:collector;
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  ignore (Db.tick db);
  (db, e1, e2, collector)

let reload db =
  let text = Persist.to_string db in
  let db2 = Db.create () in
  Workloads.Payroll.install db2;
  let _sys2 = System.create db2 in
  Persist.of_string db2 text;
  db2

let test_db_roundtrip () =
  let db, e1, e2, collector = populated_db () in
  let db2 = reload db in
  Alcotest.check value "attr" (Value.Str "ann") (Db.get db2 e1 "name");
  Alcotest.check value "obj-valued attr" (Value.Obj e2) (Db.get db2 e1 "mgr");
  Alcotest.(check string) "class preserved" "manager" (Db.class_of db2 e2);
  Alcotest.(check (list oid)) "instance consumers" [ collector ]
    (Db.consumers_of db2 e1);
  Alcotest.(check (list oid)) "class consumers" [ collector ]
    (Db.class_consumers_of db2 "manager");
  Alcotest.(check bool) "index declared" true
    (Db.has_index db2 ~cls:"employee" ~attr:"salary");
  Alcotest.(check (list oid)) "index rebuilt" [ e1 ]
    (Db.index_lookup db2 ~cls:"employee" ~attr:"salary" (Value.Float 1500.));
  Alcotest.(check int) "clock preserved" (Db.now db) (Db.now db2);
  (* OID allocation continues without collisions *)
  let fresh = new_employee db2 in
  Alcotest.(check bool) "fresh oid distinct" true
    (not (List.exists (Oid.equal fresh) [ e1; e2; collector ]))

let test_roundtrip_is_fixpoint () =
  let db, _, _, _ = populated_db () in
  let once = Persist.to_string db in
  let db2 = reload db in
  Alcotest.(check string) "stable serialization" once (Persist.to_string db2)

let test_load_errors () =
  let fresh () =
    let db = Db.create () in
    Workloads.Payroll.install db;
    db
  in
  (match Persist.of_string (fresh ()) "garbage" with
  | () -> Alcotest.fail "bad magic accepted"
  | exception Errors.Parse_error _ -> ());
  (* object of unregistered class *)
  let text = "SENTINELDB 1\nclock 0\nnextoid 2\nobj 1 martian\nend\nEOF\n" in
  (match Persist.of_string (fresh ()) text with
  | () -> Alcotest.fail "unknown class accepted"
  | exception Errors.No_such_class "martian" -> ());
  (* loading into a non-empty database *)
  let db = fresh () in
  ignore (new_employee db);
  (match Persist.of_string db "SENTINELDB 1\nEOF\n" with
  | () -> Alcotest.fail "non-empty load accepted"
  | exception Errors.Transaction_error _ -> ());
  (* loading during a transaction *)
  let db = fresh () in
  Transaction.begin_ db;
  match Persist.of_string db "SENTINELDB 1\nEOF\n" with
  | () -> Alcotest.fail "load during txn accepted"
  | exception Errors.Transaction_error _ -> Transaction.abort db

let test_save_load_file () =
  let db, e1, _, _ = populated_db () in
  let path = Filename.temp_file "sentinel_test" ".db" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Persist.save db path;
      let db2 = Db.create () in
      Workloads.Payroll.install db2;
      let _sys2 = System.create db2 in
      Persist.load db2 path;
      Alcotest.check value "file roundtrip" (Value.Str "ann")
        (Db.get db2 e1 "name"))

let test_save_atomic_and_tmp_cleanup () =
  let module Mem = Oodb.Storage.Mem in
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db, e1, _, _ = populated_db () in
  Persist.save ~storage db "store.db";
  Alcotest.(check (list string)) "a clean save leaves only the target"
    [ "store.db" ] (Mem.files fs);
  (* a save that fails mid-serialization must unlink its temp file and
     leave the previous snapshot untouched *)
  let before = Mem.contents fs "store.db" in
  Mem.fail_writes fs 99;
  (match Persist.save ~storage db "store.db" with
  | () -> Alcotest.fail "expected the injected failure to escape"
  | exception Errors.Io_error _ -> ());
  Mem.clear_faults fs;
  Alcotest.(check (list string)) "failed save leaves no temp file"
    [ "store.db" ] (Mem.files fs);
  Alcotest.(check string) "previous snapshot untouched" before
    (Mem.contents fs "store.db");
  let db2 = Db.create () in
  Workloads.Payroll.install db2;
  let _sys2 = System.create db2 in
  Persist.load ~storage db2 "store.db";
  Alcotest.check value "old snapshot still loads" (Value.Str "ann")
    (Db.get db2 e1 "name")

(* Frozen pre-slot fixtures (test/fixtures/gen_note.md): a snapshot and a
   rotated WAL written by the hashtbl-era build.  Loading and replaying them
   into today's slot-compiled store proves the on-disk contract — attribute
   names stay strings — survived the layout refactor.  Runs in both layout
   modes. *)
let fixture name =
  (* cwd is test/ under `dune runtest`, the workspace root under exec *)
  let candidates =
    [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "fixture %s not found from %s" name (Sys.getcwd ())

let test_preslot_fixture_compat () =
  let run layout =
    let db = Db.create ~layout () in
    Db.define_class db
      (Schema.define "fx_account"
         ~attrs:
           [
             ("owner", Value.Str "");
             ("balance", Value.Int 0);
             ("tags", Value.List []);
           ]);
    Db.define_class db
      (Schema.define "fx_savings" ~super:"fx_account"
         ~attrs:[ ("rate", Value.Float 0.01) ]);
    Persist.load db (fixture "preslot.snapshot");
    let applied = Oodb.Wal.replay db (fixture "preslot.wal") in
    Alcotest.(check int) "post-checkpoint batches replay" 3 applied;
    let o n = Oid.of_int n in
    (* obj 1: untouched by the WAL *)
    Alcotest.check value "o1 balance" (Value.Int 140) (Db.get db (o 1) "balance");
    Alcotest.check value "o1 owner" (Value.Str "ann") (Db.get db (o 1) "owner");
    Alcotest.check value "o1 tags"
      (Value.List [ Value.Str "vip"; Value.Int 7 ])
      (Db.get db (o 1) "tags");
    Alcotest.(check (list oid)) "o1 consumers" [ o 2 ] (Db.consumers_of db (o 1));
    (* obj 2: balance and rate updated by batch 7 *)
    Alcotest.check value "o2 balance" (Value.Int 300) (Db.get db (o 2) "balance");
    Alcotest.check value "o2 rate" (Value.Float 0.07) (Db.get db (o 2) "rate");
    Alcotest.check value "o2 owner" (Value.Str "bob") (Db.get db (o 2) "owner");
    (* obj 3 was deleted before the checkpoint; obj 4 created by batch 8 *)
    Alcotest.(check bool) "o3 gone" false (Db.exists db (o 3));
    Alcotest.check value "o4 balance" (Value.Int 11) (Db.get db (o 4) "balance");
    Alcotest.check value "o4 owner" (Value.Str "cyd") (Db.get db (o 4) "owner");
    (* the snapshot's index was rebuilt and followed the replayed writes *)
    Alcotest.(check (list oid)) "index finds o4" [ o 4 ]
      (Db.index_lookup db ~cls:"fx_account" ~attr:"balance" (Value.Int 11));
    Alcotest.(check (list oid)) "index dropped o2's old key" []
      (Db.index_lookup db ~cls:"fx_account" ~attr:"balance" (Value.Int 250));
    Alcotest.(check (list oid)) "class consumers" [ o 2 ]
      (Db.class_consumers_of db "fx_account");
    Oodb.Verify.check_exn db
  in
  run `Slots;
  run `Hashtbl

(* Property: a store with random employees roundtrips attribute-exactly. *)
let prop_db_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"database roundtrip preserves attributes" ~count:40
       QCheck2.Gen.(list_size (int_bound 20) (pair (string_size (int_bound 6)) small_signed_int))
       (fun people ->
         let db = Db.create () in
         Workloads.Payroll.install db;
         let oids =
           List.map
             (fun (name, sal) ->
               new_employee db ~name ~salary:(float_of_int sal))
             people
         in
         let db2 = Db.create () in
         Workloads.Payroll.install db2;
         Persist.of_string db2 (Persist.to_string db);
         List.for_all
           (fun o -> Db.attrs db o = Db.attrs db2 o)
           oids))

let suite =
  [
    test "value codec cases" test_value_codec_cases;
    test "value codec rejects garbage" test_value_codec_errors;
    prop_value_roundtrip;
    test "database roundtrip" test_db_roundtrip;
    test "serialization is a fixpoint" test_roundtrip_is_fixpoint;
    test "load error handling" test_load_errors;
    test "save/load via file" test_save_load_file;
    test "atomic save cleans up its temp file" test_save_atomic_and_tmp_cleanup;
    test "pre-slot fixture loads and replays" test_preslot_fixture_compat;
    prop_db_roundtrip;
  ]
