(* The discrimination index behind System.Indexed routing: registration
   lifecycle (create/enable/disable/delete/rehydrate), generation-stamped
   invalidation of the cached class sets, stale-leaf cleanup, and the
   routing counters. *)

open Helpers
module Route = Events.Route
module Rule = Sentinel.Rule
module Evolution = Oodb.Evolution
module Persist = Oodb.Persist

let route sys = Option.get (System.route_index sys)

let seq_event =
  Expr.seq
    (Expr.eom ~cls:"employee" "set_salary")
    (Expr.eom ~cls:"employee" "change_income")

let test_lifecycle () =
  let db = employee_db () in
  let sys = System.create db in
  Alcotest.(check bool) "indexed by default" true (System.routing sys = System.Indexed);
  let rt = route sys in
  let base = Route.leaf_count rt in
  System.register_action sys "noop" (fun _ _ -> ());
  let r =
    System.create_rule sys ~monitor_classes:[ "employee" ] ~event:seq_event
      ~condition:"true" ~action:"noop" ()
  in
  Alcotest.(check bool) "registered on create" true (Route.registered rt r);
  Alcotest.(check int) "one leaf entry per primitive" (base + 2)
    (Route.leaf_count rt);
  System.disable sys r;
  Alcotest.(check bool) "unregistered on disable" false (Route.registered rt r);
  Alcotest.(check int) "leaves dropped on disable" base (Route.leaf_count rt);
  System.enable sys r;
  Alcotest.(check bool) "re-registered on enable" true (Route.registered rt r);
  Alcotest.(check int) "leaves restored on enable" (base + 2)
    (Route.leaf_count rt);
  (* enable is idempotent: re-registration replaces, not duplicates *)
  System.enable sys r;
  Alcotest.(check int) "enable idempotent" (base + 2) (Route.leaf_count rt);
  System.delete_rule sys r;
  Alcotest.(check bool) "unregistered on delete" false (Route.registered rt r);
  Alcotest.(check int) "leaves dropped on delete" base (Route.leaf_count rt)

let test_disabled_creation () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let r =
    System.create_rule sys ~enabled:false ~monitor_classes:[ "employee" ]
      ~event:seq_event ~condition:"true" ~action:"noop" ()
  in
  Alcotest.(check bool) "not registered while disabled" false
    (Route.registered (route sys) r);
  System.enable sys r;
  Alcotest.(check bool) "registered on first enable" true
    (Route.registered (route sys) r)

let test_rehydrate_registers () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let e = new_employee db in
  let r =
    System.create_rule sys ~name:"reloaded" ~monitor:[ e ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"true" ~action:"noop" ()
  in
  let text = Persist.to_string db in
  let db2 = Db.create () in
  Workloads.Payroll.install db2;
  let sys2 = System.create db2 in
  System.register_action sys2 "noop" (fun _ _ -> ());
  Persist.of_string db2 text;
  Alcotest.(check bool) "nothing indexed before rehydrate" false
    (Route.registered (route sys2) r);
  System.rehydrate sys2;
  Alcotest.(check bool) "indexed after rehydrate" true
    (Route.registered (route sys2) r);
  ignore (Db.send db2 e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "reloaded rule detects through the index" 1
    (System.rule_info sys2 r).Rule.triggered

(* A class defined after the rule's subsumption sets were first resolved
   must be picked up: define_class bumps the schema generation, and the
   cached sets are re-derived on the next delivery. *)
let test_new_subclass_invalidates () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let r =
    System.create_rule sys ~monitor_classes:[ "employee" ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"true" ~action:"noop" ()
  in
  let e = new_employee db in
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "cache warmed" 1 (System.rule_info sys r).Rule.triggered;
  Db.define_class db (Oodb.Schema.define "temp_worker" ~super:"employee");
  let t = Db.new_object db "temp_worker" ~attrs:[ ("name", Value.Str "t") ] in
  ignore (Db.send db t "set_salary" [ Value.Float 2. ]);
  Alcotest.(check int) "new subclass instance reaches the rule" 2
    (System.rule_info sys r).Rule.triggered

(* Evolution DDL invalidates the same way: granting a subclass its own
   event interface entry changes nothing about subsumption, but the
   refreshed class_info must not leave the index serving stale sets. *)
let test_evolution_invalidates () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let r =
    System.create_rule sys ~monitor_classes:[ "employee" ]
      ~event:(Expr.prim ~cls:"employee" Oodb.Types.Before "get_name")
      ~condition:"true" ~action:"noop" ()
  in
  let e = new_employee db in
  ignore (Db.send db e "get_name" []);
  Alcotest.(check int) "get_name generates no events yet" 0
    (System.rule_info sys r).Rule.triggered;
  Evolution.add_event_generator db ~cls:"employee" ~meth:"get_name"
    Oodb.Schema.On_begin;
  ignore (Db.send db e "get_name" []);
  Alcotest.(check int) "detected after evolution" 1
    (System.rule_info sys r).Rule.triggered;
  Evolution.remove_event_generator db ~cls:"employee" ~meth:"get_name";
  ignore (Db.send db e "get_name" []);
  Alcotest.(check int) "silent again after removal" 1
    (System.rule_info sys r).Rule.triggered

(* A rule whose creation is rolled back leaves a stale registration: the
   guard must keep it silent, and prune_runtimes must reclaim it. *)
let test_rollback_leaves_then_prune () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let e = new_employee db in
  Transaction.begin_ db;
  let r =
    System.create_rule sys ~monitor_classes:[ "employee" ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"true" ~action:"noop" ()
  in
  Transaction.abort db;
  Alcotest.(check bool) "rule object rolled back" false (Db.exists db r);
  let rt = route sys in
  Alcotest.(check bool) "registration is stale, not gone" true
    (Route.registered rt r);
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "guard keeps the stale rule silent" 0
    (System.rule_info sys r).Rule.triggered;
  System.prune_runtimes sys;
  Alcotest.(check bool) "pruned from the index" false (Route.registered rt r);
  ignore (Db.send db e "set_salary" [ Value.Float 2. ])

let test_counters () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  ignore
    (System.create_rule sys ~monitor_classes:[ "employee" ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"noop" ());
  ignore
    (System.create_rule sys ~monitor_classes:[ "employee" ]
       ~event:(Expr.prim ~cls:"employee" Oodb.Types.Before "get_age")
       ~condition:"true" ~action:"noop" ());
  let e = new_employee db in
  System.reset_stats sys;
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  let s = System.stats sys in
  Alcotest.(check int) "one bucket hit" 1 s.System.index_hits;
  Alcotest.(check int) "only the matching rule probed" 1 s.System.candidates_probed;
  Alcotest.(check int) "one leaf offered" 1 s.System.leaves_offered;
  ignore (Db.send db e "get_salary" [])
  (* get_salary has no leaves anywhere: no bucket, no probes *);
  let s = System.stats sys in
  Alcotest.(check int) "miss costs nothing" 1 s.System.index_hits;
  Alcotest.(check int) "no extra probes" 1 s.System.candidates_probed;
  System.reset_stats sys;
  let s = System.stats sys in
  Alcotest.(check int) "counters reset" 0 s.System.index_hits

let test_wildcard_handler () =
  let db = employee_db () in
  let sys = System.create db in
  let seen = ref 0 in
  let n = System.create_notifiable sys (fun _ -> incr seen) in
  Db.subscribe_class db ~cls:"employee" ~consumer:n;
  let e = new_employee db in
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  ignore (Db.send db e "get_age" []);
  (* get_age is On_both: two occurrences *)
  Alcotest.(check int) "handler hears every subscribed occurrence" 3 !seen

let suite =
  [
    test "register on create; enable/disable/delete" test_lifecycle;
    test "disabled creation stays out of the index" test_disabled_creation;
    test "rehydrate re-registers" test_rehydrate_registers;
    test "new subclass invalidates cached sets" test_new_subclass_invalidates;
    test "evolution DDL invalidates" test_evolution_invalidates;
    test "rolled-back rule: guarded then pruned" test_rollback_leaves_then_prune;
    test "routing counters" test_counters;
    test "wildcard handler delivery" test_wildcard_handler;
  ]
