open Helpers

let test_commit_keeps_changes () =
  let db = employee_db () in
  let e = new_employee db ~salary:100. in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 200.);
  Transaction.commit db;
  Alcotest.check value "kept" (Value.Float 200.) (Db.get db e "salary")

let test_abort_restores_attrs () =
  let db = employee_db () in
  let e = new_employee db ~salary:100. ~name:"bob" in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 200.);
  Db.set db e "salary" (Value.Float 300.);
  Db.set db e "name" (Value.Str "robert");
  Transaction.abort db;
  Alcotest.check value "salary restored" (Value.Float 100.) (Db.get db e "salary");
  Alcotest.check value "name restored" (Value.Str "bob") (Db.get db e "name")

let test_abort_removes_created () =
  let db = employee_db () in
  Transaction.begin_ db;
  let e = new_employee db in
  Alcotest.(check bool) "visible inside" true (Db.exists db e);
  Transaction.abort db;
  Alcotest.(check bool) "gone after abort" false (Db.exists db e);
  Alcotest.(check int) "extent empty" 0 (List.length (Db.extent db "employee"))

let test_abort_restores_deleted () =
  let db = employee_db () in
  let e = new_employee db ~salary:42. in
  Transaction.begin_ db;
  Db.delete_object db e;
  Alcotest.(check bool) "gone inside" false (Db.exists db e);
  Transaction.abort db;
  Alcotest.(check bool) "restored" true (Db.exists db e);
  Alcotest.check value "attrs restored" (Value.Float 42.) (Db.get db e "salary");
  Alcotest.(check int) "back in extent" 1 (List.length (Db.extent db "employee"))

let test_abort_restores_subscriptions () =
  let db, sys, collector, _seen = sys_with_collector () in
  ignore sys;
  let e = new_employee db in
  Transaction.begin_ db;
  Db.subscribe db ~reactive:e ~consumer:collector;
  Db.subscribe_class db ~cls:"employee" ~consumer:collector;
  Transaction.abort db;
  Alcotest.(check int) "instance subs rolled back" 0
    (List.length (Db.consumers_of db e));
  Alcotest.(check int) "class subs rolled back" 0
    (List.length (Db.class_consumers_of db "employee"))

let test_nested_commit_then_outer_abort () =
  let db = employee_db () in
  let e = new_employee db ~salary:1. in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 2.);
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 3.);
  Transaction.commit db; (* inner commit folds into parent *)
  Alcotest.(check int) "depth back to 1" 1 (Transaction.depth db);
  Transaction.abort db; (* outer abort undoes both *)
  Alcotest.check value "both undone" (Value.Float 1.) (Db.get db e "salary")

let test_nested_abort_keeps_outer () =
  let db = employee_db () in
  let e = new_employee db ~salary:1. in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 2.);
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 3.);
  Transaction.abort db; (* inner only *)
  Alcotest.check value "inner undone" (Value.Float 2.) (Db.get db e "salary");
  Transaction.commit db;
  Alcotest.check value "outer kept" (Value.Float 2.) (Db.get db e "salary")

let test_atomically () =
  let db = employee_db () in
  let e = new_employee db ~salary:10. in
  (match
     Transaction.atomically db (fun () ->
         Db.set db e "salary" (Value.Float 20.);
         "done")
   with
  | Ok s -> Alcotest.(check string) "result" "done" s
  | Error _ -> Alcotest.fail "unexpected error");
  Alcotest.check value "committed" (Value.Float 20.) (Db.get db e "salary");
  (match
     Transaction.atomically db (fun () ->
         Db.set db e "salary" (Value.Float 99.);
         raise (Errors.Rule_abort "nope"))
   with
  | Ok () -> Alcotest.fail "should have failed"
  | Error (Errors.Rule_abort m) -> Alcotest.(check string) "error" "nope" m
  | Error e -> raise e);
  Alcotest.check value "rolled back" (Value.Float 20.) (Db.get db e "salary");
  Alcotest.(check bool) "no txn left open" false (Transaction.in_progress db)

let test_deferred_runs_at_commit () =
  let db = employee_db () in
  let order = ref [] in
  Transaction.begin_ db;
  Transaction.add_deferred db (fun () -> order := "d1" :: !order);
  Transaction.begin_ db;
  Transaction.add_deferred db (fun () -> order := "d2" :: !order);
  Transaction.commit db;
  Alcotest.(check (list string)) "not yet" [] (List.rev !order);
  Transaction.commit db;
  Alcotest.(check (list string)) "fifo at outer commit" [ "d1"; "d2" ]
    (List.rev !order)

let test_deferred_can_enqueue_more () =
  let db = employee_db () in
  let ran = ref [] in
  Transaction.begin_ db;
  Transaction.add_deferred db (fun () ->
      ran := "first" :: !ran;
      Transaction.add_deferred db (fun () -> ran := "second" :: !ran));
  Transaction.commit db;
  Alcotest.(check (list string)) "chained" [ "first"; "second" ] (List.rev !ran)

let test_deferred_failure_aborts () =
  let db = employee_db () in
  let e = new_employee db ~salary:1. in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 2.);
  Transaction.add_deferred db (fun () -> raise (Errors.Rule_abort "deferred"));
  (match Transaction.commit db with
  | () -> Alcotest.fail "commit should raise"
  | exception Errors.Rule_abort _ -> ());
  Alcotest.check value "aborted" (Value.Float 1.) (Db.get db e "salary");
  Alcotest.(check bool) "txn closed" false (Transaction.in_progress db)

let test_detached_runs_after_commit () =
  let db = employee_db () in
  let observed = ref None in
  let e = new_employee db ~salary:1. in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 2.);
  Transaction.add_detached db (fun () ->
      (* runs outside the transaction, seeing committed state *)
      observed := Some (Transaction.in_progress db, Db.get db e "salary"));
  Alcotest.(check bool) "not yet" true (!observed = None);
  Transaction.commit db;
  match !observed with
  | Some (in_txn, v) ->
    Alcotest.(check bool) "outside txn" false in_txn;
    Alcotest.check value "sees committed value" (Value.Float 2.) v
  | None -> Alcotest.fail "detached did not run"

let test_detached_dies_with_abort () =
  let db = employee_db () in
  let ran = ref false in
  Transaction.begin_ db;
  Transaction.add_detached db (fun () -> ran := true);
  Transaction.abort db;
  Alcotest.(check bool) "discarded" false !ran

let test_on_abort_hooks () =
  let db = employee_db () in
  let e = new_employee db ~salary:100. in
  let fired = ref [] in
  (* outside a transaction: mutations are final, hook is a no-op *)
  Transaction.on_abort db (fun () -> fired := "outside" :: !fired);
  (* runs only on abort, not commit *)
  Transaction.begin_ db;
  Transaction.on_abort db (fun () -> fired := "committed" :: !fired);
  Transaction.commit db;
  Alcotest.(check (list string)) "no hook on commit" [] !fired;
  (* interleaves with undo entries newest-first: a hook observes database
     state as of the moment it was registered *)
  let seen = ref Value.Null in
  Transaction.begin_ db;
  Transaction.on_abort db (fun () -> fired := "first" :: !fired);
  Db.set db e "salary" (Value.Float 200.);
  Transaction.on_abort db (fun () ->
      seen := Db.get db e "salary";
      fired := "second" :: !fired);
  Transaction.abort db;
  Alcotest.(check (list string)) "applied newest first" [ "first"; "second" ]
    !fired;
  Alcotest.check value "hook saw state as of registration" (Value.Float 200.)
    !seen;
  Alcotest.check value "attr still restored" (Value.Float 100.)
    (Db.get db e "salary");
  (* survives an inner commit into the parent, dies with the inner abort *)
  fired := [];
  Transaction.begin_ db;
  Transaction.begin_ db;
  Transaction.on_abort db (fun () -> fired := "merged" :: !fired);
  Transaction.commit db;
  Transaction.begin_ db;
  Transaction.on_abort db (fun () -> fired := "inner" :: !fired);
  Transaction.abort db;
  Alcotest.(check (list string)) "inner abort ran its hook" [ "inner" ] !fired;
  Transaction.abort db;
  Alcotest.(check (list string)) "merged hook ran on outer abort"
    [ "merged"; "inner" ] !fired

let test_misuse () =
  let db = Db.create () in
  check_raises_any "commit without begin" (fun () -> Transaction.commit db);
  check_raises_any "abort without begin" (fun () -> Transaction.abort db);
  check_raises_any "add_deferred outside" (fun () ->
      Transaction.add_deferred db (fun () -> ()))

let test_outermost_id () =
  let db = Db.create () in
  Alcotest.(check bool) "none" true (Transaction.outermost_id db = None);
  Transaction.begin_ db;
  let outer = Transaction.outermost_id db in
  Transaction.begin_ db;
  Alcotest.(check bool) "stable across nesting" true
    (Transaction.outermost_id db = outer);
  Transaction.abort db;
  Transaction.abort db

(* Property: any interleaving of sets/creates/deletes inside an aborted
   transaction leaves the observable store unchanged. *)
let ops_gen =
  let open QCheck2.Gen in
  list_size (int_bound 20)
    (oneof
       [
         map (fun (i, v) -> `Set (i, v)) (pair (int_bound 4) small_signed_int);
         return `Create;
         map (fun i -> `Delete i) (int_bound 4);
       ])

let snapshot db =
  Db.extent db ~deep:true "employee"
  |> List.map (fun o -> (Oid.to_int o, Db.attrs db o))

let prop_abort_is_identity =
  QCheck2.Test.make ~name:"abort restores observable state" ~count:100 ops_gen
    (fun ops ->
      let db = employee_db () in
      let base = Array.init 5 (fun i -> new_employee db ~salary:(float_of_int i)) in
      let before = snapshot db in
      Transaction.begin_ db;
      List.iter
        (fun op ->
          try
            match op with
            | `Set (i, v) ->
              Db.set db base.(i) "salary" (Value.Float (float_of_int v))
            | `Create -> ignore (new_employee db)
            | `Delete i -> Db.delete_object db base.(i)
          with Errors.Dead_object _ | Errors.No_such_object _ ->
            () (* op on an already-deleted object: fine *))
        ops;
      Transaction.abort db;
      snapshot db = before)

let suite =
  [
    test "commit keeps changes" test_commit_keeps_changes;
    test "abort restores attributes" test_abort_restores_attrs;
    test "abort removes created objects" test_abort_removes_created;
    test "abort restores deleted objects" test_abort_restores_deleted;
    test "abort restores subscriptions" test_abort_restores_subscriptions;
    test "nested commit then outer abort" test_nested_commit_then_outer_abort;
    test "nested abort keeps outer" test_nested_abort_keeps_outer;
    test "atomically" test_atomically;
    test "deferred runs at outer commit" test_deferred_runs_at_commit;
    test "deferred can enqueue more" test_deferred_can_enqueue_more;
    test "deferred failure aborts" test_deferred_failure_aborts;
    test "detached runs after commit" test_detached_runs_after_commit;
    test "detached dies with abort" test_detached_dies_with_abort;
    test "on_abort hooks" test_on_abort_hooks;
    test "misuse raises" test_misuse;
    test "outermost id" test_outermost_id;
    QCheck_alcotest.to_alcotest prop_abort_is_identity;
  ]
