open Helpers
module Verify = Oodb.Verify

let check_ok db label =
  match Verify.check db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "%s: %s" label (String.concat "; " ps)

let test_sound_database () =
  let db = employee_db () in
  let e = new_employee db in
  let m = new_employee db ~cls:"manager" in
  Db.set db e "mgr" (Value.Obj m);
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"name" ();
  check_ok db "fresh";
  ignore (Db.send db e "set_salary" [ Value.Float 5. ]);
  Db.delete_object db m;
  check_ok db "after mutation and delete";
  Verify.check_exn db (* must not raise *)

let test_sound_after_abort_and_reload () =
  let db = employee_db () in
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  let e = new_employee db ~salary:1. in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 2.);
  ignore (new_employee db);
  Db.delete_object db e;
  Transaction.abort db;
  check_ok db "after abort";
  (match Verify.check ~quiescent:true db with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "quiescent: %s" (String.concat ";" ps));
  let db2 = Db.create () in
  Workloads.Payroll.install db2;
  Oodb.Persist.of_string db2 (Oodb.Persist.to_string db);
  check_ok db2 "after reload"

let test_quiescent_flag () =
  let db = employee_db () in
  Transaction.begin_ db;
  (match Verify.check ~quiescent:true db with
  | Error [ p ] ->
    Alcotest.(check bool) "mentions txn" true
      (contains_substring ~sub:"transaction" p)
  | _ -> Alcotest.fail "expected one violation");
  Alcotest.(check bool) "non-quiescent accepts" true (Verify.check db = Ok ());
  Transaction.abort db

let test_detects_corruption () =
  let db = employee_db () in
  let e = new_employee db ~salary:3. in
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  (* corrupt the index behind the database's back *)
  let ix = Hashtbl.find db.Oodb.Types.indexes ("employee", "salary") in
  (match ix.Oodb.Types.ix_backing with
  | Oodb.Types.Ix_hash entries -> Hashtbl.remove entries (Value.Float 3.)
  | Oodb.Types.Ix_ordered _ -> assert false);
  (match Verify.check db with
  | Error ps ->
    Alcotest.(check bool) "flags unindexed object" true
      (List.exists (contains_substring ~sub:"not indexed") ps)
  | Ok () -> Alcotest.fail "corruption not detected");
  ignore e;
  (* corrupt an attribute table (hashtbl layout): undeclared attribute *)
  let db2 = employee_db ~layout:`Hashtbl () in
  let e2 = new_employee db2 in
  let o = Oodb.Oid.Table.find db2.Oodb.Types.objects e2 in
  (match o.Oodb.Types.store with
  | Oodb.Types.S_table tbl -> Hashtbl.replace tbl "smuggled" Value.Null
  | Oodb.Types.S_slots _ -> assert false);
  (match Verify.check db2 with
  | Error ps ->
    Alcotest.(check bool) "flags undeclared attr" true
      (List.exists (contains_substring ~sub:"undeclared") ps)
  | Ok () -> Alcotest.fail "undeclared attribute not detected");
  (* corrupt a slot store: truncated array *)
  let db3 = employee_db () in
  let e3 = new_employee db3 in
  let o3 = Oodb.Oid.Table.find db3.Oodb.Types.objects e3 in
  (match o3.Oodb.Types.store with
  | Oodb.Types.S_slots slots ->
    o3.Oodb.Types.store <- Oodb.Types.S_slots (Array.sub slots 0 1)
  | Oodb.Types.S_table _ -> assert false);
  match Verify.check db3 with
  | Error ps ->
    Alcotest.(check bool) "flags short slot array" true
      (List.exists (contains_substring ~sub:"slot") ps)
  | Ok () -> Alcotest.fail "truncated slot array not detected"

(* Property: random committed/aborted workloads never break integrity. *)
let prop_workloads_stay_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random workloads keep the database sound" ~count:60
       QCheck2.Gen.(
         pair bool
           (list_size (int_bound 30)
              (oneof
                 [
                   map (fun (i, v) -> `Set (i, v)) (pair (int_bound 5) small_signed_int);
                   return `Create;
                   map (fun i -> `Delete i) (int_bound 5);
                   map (fun b -> `Txn b) bool;
                 ])))
       (fun (with_index, ops) ->
         let db = employee_db () in
         if with_index then
           Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"salary" ();
         let base = Array.init 6 (fun _ -> new_employee db) in
         let apply op =
           try
             match op with
             | `Set (i, v) ->
               Db.set db base.(i) "salary" (Value.Float (float_of_int v))
             | `Create -> ignore (new_employee db)
             | `Delete i -> Db.delete_object db base.(i)
             | `Txn _ -> ()
           with Errors.No_such_object _ | Errors.Dead_object _ -> ()
         in
         List.iter
           (fun op ->
             match op with
             | `Txn commit ->
               Transaction.begin_ db;
               apply `Create;
               apply (`Set (0, 9));
               if commit then Transaction.commit db else Transaction.abort db
             | other -> apply other)
           ops;
         Verify.check ~quiescent:true db = Ok ()))

let suite =
  [
    test "sound database" test_sound_database;
    test "sound after abort and reload" test_sound_after_abort_and_reload;
    test "quiescent flag" test_quiescent_flag;
    test "detects corruption" test_detects_corruption;
    prop_workloads_stay_sound;
  ]
