open Helpers
module Wal = Oodb.Wal
module Persist = Oodb.Persist

let with_tmp f =
  let path = Filename.temp_file "sentinel_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let fresh_db () =
  let db = employee_db () in
  let _sys = System.create db in
  db

let snapshot db =
  List.concat_map
    (fun cls ->
      List.map
        (fun o -> (Oid.to_int o, cls, Db.attrs db o, Db.consumers_of db o))
        (Db.extent db ~deep:false cls))
    (List.sort compare (Db.classes db))

let recover path =
  let db = fresh_db () in
  let applied = Wal.replay db path in
  (db, applied)

let test_autocommit_logging () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~name:"ann" ~salary:5. in
      Db.set db e "salary" (Value.Float 10.);
      let e2 = new_employee db in
      Db.delete_object db e2;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "four autocommit batches" 4 applied;
      Alcotest.(check bool) "object restored" true (Db.exists db2 e);
      Alcotest.check value "attr restored" (Value.Float 10.) (Db.get db2 e "salary");
      Alcotest.(check bool) "deleted stays deleted" false (Db.exists db2 e2);
      Alcotest.(check bool) "full state equal" true (snapshot db = snapshot db2))

let test_committed_txn_replayed () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      Transaction.begin_ db;
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Transaction.commit db;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "one batch" 1 applied;
      Alcotest.check value "committed state" (Value.Float 2.) (Db.get db2 e "salary"))

let test_aborted_txn_not_logged () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let keeper = new_employee db ~salary:1. in
      Transaction.begin_ db;
      ignore (new_employee db);
      Db.set db keeper "salary" (Value.Float 99.);
      Transaction.abort db;
      (* OIDs burned by the abort must not break later replay *)
      let after = new_employee db ~salary:7. in
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.check value "abort invisible" (Value.Float 1.)
        (Db.get db2 keeper "salary");
      Alcotest.(check bool) "post-abort object restored with same oid" true
        (Db.exists db2 after);
      Alcotest.check value "its attr" (Value.Float 7.) (Db.get db2 after "salary");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_inner_abort_partial () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 2.);
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 3.);
      Transaction.abort db; (* inner only *)
      Transaction.begin_ db;
      Db.set db e "income" (Value.Float 4.);
      Transaction.commit db; (* inner commit *)
      Transaction.commit db;
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.check value "outer write survived" (Value.Float 2.)
        (Db.get db2 e "salary");
      Alcotest.check value "inner-committed write survived" (Value.Float 4.)
        (Db.get db2 e "income");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_subscriptions_and_indexes_replayed () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let sys = System.create (Db.create ()) in
      ignore sys;
      let wal = Wal.attach db path in
      let e = new_employee db in
      let consumer = new_employee db in
      Db.subscribe db ~reactive:e ~consumer;
      Db.subscribe_class db ~cls:"manager" ~consumer;
      Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"salary" ();
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.(check (list oid)) "instance sub" [ consumer ]
        (Db.consumers_of db2 e);
      Alcotest.(check (list oid)) "class sub" [ consumer ]
        (Db.class_consumers_of db2 "manager");
      Alcotest.(check bool) "ordered index back" true
        (Db.index_kind db2 ~cls:"employee" ~attr:"salary" = Some `Ordered))

let test_torn_tail_ignored () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Wal.detach wal;
      (* simulate a crash mid-batch: append an unterminated batch *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "B\ns 1 salary f:0x1.8p1\n"; (* no E *)
      close_out oc;
      let db2, applied = recover path in
      Alcotest.(check int) "only complete batches" 2 applied;
      Alcotest.check value "torn write discarded" (Value.Float 2.)
        (Db.get db2 e "salary"))

let test_checkpoint_truncates () =
  with_tmp (fun wal_path ->
      with_tmp (fun snap_path ->
          let db = fresh_db () in
          let wal = Wal.attach db wal_path in
          let e = new_employee db ~salary:1. in
          Wal.checkpoint wal ~snapshot:snap_path;
          (* post-checkpoint activity lands in the fresh log *)
          Db.set db e "salary" (Value.Float 5.);
          Wal.detach wal;
          (* recovery: snapshot + log *)
          let db2 = fresh_db () in
          Oodb.Persist.load db2 snap_path;
          let applied = Wal.replay db2 wal_path in
          Alcotest.(check int) "only the post-checkpoint batch" 1 applied;
          Alcotest.check value "final state" (Value.Float 5.)
            (Db.get db2 e "salary")))

let test_rule_abort_keeps_log_clean () =
  with_tmp (fun path ->
      (* a rule that aborts the transaction: the WAL must contain nothing
         from the aborted attempt *)
      let db = employee_db () in
      let sys = System.create db in
      let e = new_employee db ~salary:10. in
      ignore
        (System.create_rule sys ~monitor:[ e ]
           ~event:(Expr.eom ~cls:"employee" "set_salary")
           ~condition:"true" ~action:"abort" ());
      let wal = Wal.attach db path in
      (match
         Transaction.atomically db (fun () ->
             ignore (Db.send db e "set_salary" [ Value.Float 999. ]))
       with
      | Ok () -> Alcotest.fail "expected abort"
      | Error (Errors.Rule_abort _) -> ()
      | Error exn -> raise exn);
      Alcotest.(check int) "nothing written" 0 (Wal.batches_written wal);
      Wal.detach wal)

let test_attach_misuse () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      check_raises_any "double attach" (fun () -> ignore (Wal.attach db path));
      Wal.detach wal;
      Wal.detach wal; (* idempotent *)
      Transaction.begin_ db;
      check_raises_any "attach mid-txn" (fun () -> ignore (Wal.attach db path));
      Transaction.abort db)

let test_missing_log_is_empty () =
  let db = fresh_db () in
  Alcotest.(check int) "no file, no batches" 0
    (Wal.replay db "/nonexistent/definitely_missing.wal")

let test_attach_validates_magic () =
  with_tmp (fun bad ->
      with_tmp (fun good ->
          Out_channel.with_open_bin bad (fun oc ->
              Out_channel.output_string oc "NOT A WAL FILE\njunk\n");
          let db = fresh_db () in
          (match Wal.attach db bad with
          | exception Errors.Parse_error _ -> ()
          | _ -> Alcotest.fail "expected Parse_error on foreign magic");
          (* the failed attach must not leave a journal installed *)
          let wal = Wal.attach db good in
          Wal.detach wal))

let test_v1_log_compatible () =
  with_tmp (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            "SENTINELWAL 1\nB\nc 1 employee name=s:a salary=f:0x1p0\nE\nB\ns 1 salary f:0x1p3\nE\n");
      let db2, applied = recover path in
      Alcotest.(check int) "both v1 batches" 2 applied;
      Alcotest.check value "v1 state" (Value.Float 8.)
        (Db.get db2 (Oid.of_int 1) "salary");
      (* appending to a v1 log keeps it replayable end to end *)
      let wal = Wal.attach db2 path in
      Db.set db2 (Oid.of_int 1) "salary" (Value.Float 9.);
      Wal.detach wal;
      let db3, applied3 = recover path in
      Alcotest.(check int) "appended batch replays" 3 applied3;
      Alcotest.check value "appended state" (Value.Float 9.)
        (Db.get db3 (Oid.of_int 1) "salary"))

let test_bitflip_tail_discarded () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Db.set db e "salary" (Value.Float 3.);
      Wal.detach wal;
      (* flip a byte inside the last batch's payload *)
      let data = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string data in
      let i = String.rindex data 'f' in
      Bytes.set b i 'g';
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      let db2 = fresh_db () in
      let applied = Wal.replay db2 path in
      Alcotest.(check int) "stops before the corrupt batch" 2 applied;
      Alcotest.check value "state at last good batch" (Value.Float 2.)
        (Db.get db2 e "salary");
      Alcotest.(check int) "checksum failure counted" 1
        (Db.stats db2).Oodb.Types.wal_checksum_failures;
      Alcotest.(check int) "discard counted" 1
        (Db.stats db2).Oodb.Types.wal_batches_discarded)

let test_counters_only_after_durable_write () =
  let fs = Oodb.Storage.Mem.create () in
  let storage = Oodb.Storage.Mem.storage fs in
  let db = fresh_db () in
  let wal = Wal.attach ~storage db "log.wal" in
  (* exhaust the bounded retry: the write fails for good *)
  Oodb.Storage.Mem.fail_writes fs 99;
  (match new_employee db with
  | exception Errors.Io_error _ -> ()
  | _ -> Alcotest.fail "expected Io_error once retries are exhausted");
  Alcotest.(check int) "no batch counted" 0 (Wal.batches_written wal);
  Alcotest.(check int) "no entries counted" 0 (Wal.entries_written wal);
  Oodb.Storage.Mem.clear_faults fs;
  (* a transient fault within the retry budget recovers and counts once *)
  Oodb.Storage.Mem.fail_writes fs 2;
  let e = new_employee db ~salary:3. in
  Alcotest.(check int) "one durable batch" 1 (Wal.batches_written wal);
  Wal.detach wal;
  (* a detached journal never moves its counters again *)
  ignore (new_employee db);
  Alcotest.(check int) "frozen after detach" 1 (Wal.batches_written wal);
  let db2 = fresh_db () in
  let applied = Wal.replay ~storage db2 "log.wal" in
  Alcotest.(check int) "the durable batch replays" 1 applied;
  Alcotest.check value "its state" (Value.Float 3.) (Db.get db2 e "salary")

let test_nested_inner_abort_outer_commit () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 2.);
      Transaction.begin_ db;
      ignore (new_employee db ~name:"ghost");
      Db.set db e "salary" (Value.Float 3.);
      Transaction.abort db;
      Db.set db e "income" (Value.Float 4.);
      Transaction.commit db;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "create + the outer batch" 2 applied;
      Oodb.Verify.check_exn ~quiescent:true db2;
      Alcotest.check value "outer write survived" (Value.Float 2.)
        (Db.get db2 e "salary");
      Alcotest.check value "post-abort write survived" (Value.Float 4.)
        (Db.get db2 e "income");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_nested_inner_commit_outer_abort () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 5.);
      Transaction.commit db; (* folds into the doomed outer transaction *)
      Transaction.abort db;
      Wal.detach wal;
      Alcotest.(check int) "only the create hit the log" 1
        (Wal.batches_written wal);
      let db2, applied = recover path in
      Alcotest.(check int) "one batch" 1 applied;
      Oodb.Verify.check_exn ~quiescent:true db2;
      Alcotest.check value "inner commit dropped with the outer abort"
        (Value.Float 1.) (Db.get db2 e "salary");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_autocommit_interleaved_with_nested () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 2.);
      Transaction.begin_ db;
      Db.set db e "income" (Value.Float 3.);
      Transaction.commit db;
      Transaction.commit db;
      Db.set db e "salary" (Value.Float 4.); (* autocommit between txns *)
      Transaction.begin_ db;
      Db.set db e "income" (Value.Float 9.);
      Transaction.abort db;
      Db.set db e "income" (Value.Float 5.); (* autocommit after abort *)
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "create, outer, two autocommits" 4 applied;
      Oodb.Verify.check_exn ~quiescent:true db2;
      Alcotest.check value "final salary" (Value.Float 4.)
        (Db.get db2 e "salary");
      Alcotest.check value "final income" (Value.Float 5.)
        (Db.get db2 e "income");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_sys_stats_mirror_recovery_counters () =
  with_tmp (fun path ->
      let src = fresh_db () in
      let wal = Wal.attach src path in
      ignore (new_employee src);
      Wal.detach wal;
      let db = employee_db () in
      let sys = System.create db in
      let applied = Wal.replay db path in
      Alcotest.(check int) "applied" 1 applied;
      let s = System.stats sys in
      Alcotest.(check int) "mirrored into sys stats" 1
        s.System.wal_batches_replayed;
      Alcotest.(check bool) "fsyncs counted on the source store" true
        ((Db.stats src).Oodb.Types.wal_fsyncs > 0))

(* Property: for random committed workloads, replaying the WAL into a fresh
   database reproduces the exact observable state. *)
let prop_replay_equals_original =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wal replay reproduces state" ~count:60
       QCheck2.Gen.(
         list_size (int_bound 40)
           (oneof
              [
                map (fun (i, v) -> `Set (i, v)) (pair (int_bound 6) small_signed_int);
                return `Create;
                map (fun i -> `Delete i) (int_bound 6);
                map (fun b -> `Txn b) bool; (* true = commit, false = abort *)
              ]))
       (fun ops ->
         with_tmp (fun path ->
             let db = fresh_db () in
             let wal = Wal.attach db path in
             let created = ref [] in
             let base = Array.init 7 (fun _ -> new_employee db) in
             Array.iter (fun o -> created := o :: !created) base;
             let apply op =
               try
                 match op with
                 | `Set (i, v) ->
                   Db.set db base.(i) "salary" (Value.Float (float_of_int v))
                 | `Create -> created := new_employee db :: !created
                 | `Delete i -> Db.delete_object db base.(i)
                 | `Txn _ -> ()
               with Errors.No_such_object _ | Errors.Dead_object _ -> ()
             in
             (* interleave flat ops and short transactions *)
             List.iter
               (fun op ->
                 match op with
                 | `Txn commit ->
                   Transaction.begin_ db;
                   apply `Create;
                   if commit then Transaction.commit db else Transaction.abort db
                 | other -> apply other)
               ops;
             Wal.detach wal;
             let db2, _ = recover path in
             snapshot db = snapshot db2)))

(* --- group commit -------------------------------------------------------- *)

module Storage = Oodb.Storage
module Mem = Storage.Mem

let log_path = "log.wal"
let snap_path = "snap.db"

let mem_recover fs =
  let db = fresh_db () in
  let r = Wal.recover ~storage:(Mem.storage fs) db ~snapshot:snap_path ~wal:log_path in
  (db, r)

let test_group_commit_coalesces () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal =
    Wal.attach ~storage
      ~group_commit:{ Wal.max_batch = 4; max_wait_us = max_int }
      db log_path
  in
  let es = List.init 8 (fun _ -> new_employee db ~salary:1.) in
  Alcotest.(check int) "8 commits sealed into 2 batches" 2
    (Wal.batches_written wal);
  Alcotest.(check int) "coordinator counted both seals" 2
    (Db.stats db).Oodb.Types.group_commit_batches;
  Alcotest.(check int) "nothing pending after a seal" 0 (Wal.pending_commits wal);
  (* one fsync per sealed group, not per commit (plus the header's) *)
  Alcotest.(check int) "3 fsyncs: header + 2 group seals" 3 (Mem.fsyncs fs);
  Wal.detach wal;
  let db2, r = mem_recover fs in
  Alcotest.(check int) "both group batches replay" 2 r.Wal.r_batches_replayed;
  List.iter
    (fun e -> Alcotest.(check bool) "employee survived" true (Db.exists db2 e))
    es;
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2)

let test_group_commit_sync_seals () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal =
    Wal.attach ~storage
      ~group_commit:{ Wal.max_batch = 100; max_wait_us = max_int }
      db log_path
  in
  ignore (new_employee db ~salary:1.);
  ignore (new_employee db ~salary:2.);
  Alcotest.(check int) "2 commits waiting in the open group" 2
    (Wal.pending_commits wal);
  (* the open group is memory only: the durable log holds just the header *)
  let db0 = fresh_db () in
  Alcotest.(check int) "nothing durable before the seal" 0
    (Wal.replay ~storage db0 log_path);
  Wal.sync wal;
  Alcotest.(check int) "sync sealed the group" 0 (Wal.pending_commits wal);
  Alcotest.(check int) "one batch for both commits" 1 (Wal.batches_written wal);
  let db1 = fresh_db () in
  Alcotest.(check int) "durable after sync" 1 (Wal.replay ~storage db1 log_path);
  Wal.detach wal;
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db1)

let test_group_commit_crash_loses_whole_group () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal =
    Wal.attach ~storage
      ~group_commit:{ Wal.max_batch = 3; max_wait_us = max_int }
      db log_path
  in
  let a = new_employee db ~salary:1. in
  let b = new_employee db ~salary:2. in
  let c = new_employee db ~salary:3. in
  (* first group of 3 sealed; these two are the open group *)
  Db.set db a "salary" (Value.Float 10.);
  Db.set db b "salary" (Value.Float 20.);
  (* crash: only the durable bytes survive *)
  let fs2 = Mem.reboot fs in
  let db2 = fresh_db () in
  ignore (Wal.replay ~storage:(Mem.storage fs2) db2 log_path);
  Alcotest.check value "sealed group survived" (Value.Float 1.)
    (Db.get db2 a "salary");
  Alcotest.(check bool) "third create survived with its group" true
    (Db.exists db2 c);
  Alcotest.check value "open group lost wholesale" (Value.Float 2.)
    (Db.get db2 b "salary");
  Wal.detach wal

let test_group_commit_window_expiry () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  (* a zero-length window: each arriving commit finds the previous group
     expired and seals it, so grouping degenerates to per-commit batches *)
  let wal =
    Wal.attach ~storage
      ~group_commit:{ Wal.max_batch = 100; max_wait_us = 0 }
      db log_path
  in
  ignore (new_employee db);
  ignore (new_employee db);
  ignore (new_employee db);
  Alcotest.(check int) "two expired groups sealed" 2 (Wal.batches_written wal);
  Alcotest.(check int) "the third commit holds the group open" 1
    (Wal.pending_commits wal);
  Wal.detach wal;
  Alcotest.(check int) "detach sealed the last group" 3 (Wal.batches_written wal);
  let db2 = fresh_db () in
  Alcotest.(check int) "all three batches replay" 3
    (Wal.replay ~storage db2 log_path);
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2)

(* --- incremental checkpoints --------------------------------------------- *)

let test_delta_checkpoint_and_recover () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal = Wal.attach ~storage db log_path in
  let es = Array.init 40 (fun _ -> new_employee db ~salary:1.) in
  (* first checkpoint has no base to chain from: bootstraps a full one *)
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  Alcotest.(check bool) "bootstrapped a full base" true
    (Mem.durable fs snap_path <> "");
  Alcotest.(check int) "no delta yet" 0
    (List.length (Wal.delta_files ~storage ~snapshot:snap_path ()));
  let base_bytes = String.length (Mem.durable fs snap_path) in
  Db.set db es.(0) "salary" (Value.Float 2.);
  Db.set db es.(1) "salary" (Value.Float 3.);
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  Db.set db es.(2) "salary" (Value.Float 4.);
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  (match Wal.delta_files ~storage ~snapshot:snap_path () with
  | [ (_, p1, w1); (_, p2, w2) ] ->
    Alcotest.(check bool) "chain links by sequence" true (p2 = w1 && w2 > p2 && p1 > 0)
  | l -> Alcotest.failf "expected 2 chain elements, got %d" (List.length l));
  let delta_bytes =
    String.length (Mem.durable fs (snap_path ^ ".delta-1"))
  in
  Alcotest.(check bool) "delta is much smaller than the base" true
    (delta_bytes * 4 < base_bytes);
  Alcotest.(check int) "delta checkpoints counted" 2
    (Db.stats db).Oodb.Types.delta_checkpoints;
  (* a clean store writes no empty chain element *)
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  Alcotest.(check int) "no-op on a clean store" 2
    (List.length (Wal.delta_files ~storage ~snapshot:snap_path ()));
  (* work past the last delta lands in the WAL tail *)
  Db.set db es.(3) "salary" (Value.Float 5.);
  Wal.detach wal;
  let db2, r = mem_recover fs in
  Alcotest.(check bool) "base loaded" true r.Wal.r_snapshot_loaded;
  Alcotest.(check int) "both deltas applied" 2 r.Wal.r_deltas_applied;
  Alcotest.(check bool) "tail replayed" true (r.Wal.r_batches_replayed >= 1);
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2)

let test_delta_covers_deletes_and_subscriptions () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal = Wal.attach ~storage db log_path in
  let a = new_employee db ~salary:1. in
  let b = new_employee db ~salary:2. in
  let c = new_employee db ~salary:3. in
  Wal.checkpoint wal ~snapshot:snap_path;
  Db.delete_object db b;
  Db.subscribe db ~reactive:a ~consumer:c;
  Db.subscribe_class db ~cls:"employee" ~consumer:c;
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  Wal.detach wal;
  let db2, r = mem_recover fs in
  Alcotest.(check int) "one delta" 1 r.Wal.r_deltas_applied;
  Alcotest.(check bool) "delete carried by the delta" false (Db.exists db2 b);
  Alcotest.(check (list oid)) "subscription carried" [ c ]
    (Db.consumers_of db2 a);
  Alcotest.(check (list oid)) "class subscription carried" [ c ]
    (Db.class_consumers_of db2 "employee");
  Alcotest.(check bool) "index carried" true
    (Db.index_kind db2 ~cls:"employee" ~attr:"salary" <> None);
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2)

(* --- compaction ----------------------------------------------------------- *)

let test_compact_truncates_and_folds () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal = Wal.attach ~storage db log_path in
  let es = Array.init 10 (fun _ -> new_employee db ~salary:1.) in
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  Db.set db es.(0) "salary" (Value.Float 2.);
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  Db.set db es.(1) "salary" (Value.Float 3.);
  let wal_before = String.length (Mem.durable fs log_path) in
  Wal.compact wal ~snapshot:snap_path;
  (* log truncated to the bare header, deltas folded into the new base *)
  Alcotest.(check int) "log truncated" (String.length "SENTINELWAL 2\n")
    (String.length (Mem.durable fs log_path));
  Alcotest.(check bool) "log was non-trivial before" true
    (wal_before > String.length "SENTINELWAL 2\n");
  Alcotest.(check int) "delta chain removed" 0
    (List.length (Wal.delta_files ~storage ~snapshot:snap_path ()));
  Alcotest.(check int) "wal_bytes tracks the truncation"
    (String.length (Mem.durable fs log_path))
    (Db.stats db).Oodb.Types.wal_bytes;
  (* the log keeps working after compaction *)
  Db.set db es.(2) "salary" (Value.Float 4.);
  Wal.detach wal;
  let db2, r = mem_recover fs in
  Alcotest.(check int) "post-compact tail replays" 1 r.Wal.r_batches_replayed;
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2)

let test_compact_retention () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal = Wal.attach ~storage db log_path in
  let e = new_employee db ~salary:0. in
  for i = 1 to 9 do
    Db.set db e "salary" (Value.Float (float_of_int i))
  done;
  (* keep everything from batch 6 on (create + 9 sets = batches 1..10) *)
  Wal.compact ~retention:(Wal.Keep_since_seq 6) wal ~snapshot:snap_path;
  let kept = Mem.durable fs log_path in
  Alcotest.(check bool) "a real tail survived" true
    (String.length kept > String.length "SENTINELWAL 2\n");
  (* retained batches are covered by the base: replay skips them *)
  let db2, r = mem_recover fs in
  Alcotest.(check int) "retained tail skipped by recovery" 0
    r.Wal.r_batches_replayed;
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2);
  (* appends after a retained tail keep the sequence contiguous *)
  Db.set db e "salary" (Value.Float 42.);
  Wal.detach wal;
  let db3, r3 = mem_recover fs in
  Alcotest.(check int) "appended batch replays past the tail" 1
    r3.Wal.r_batches_replayed;
  Alcotest.check value "final state" (Value.Float 42.) (Db.get db3 e "salary");
  (* a byte budget keeps only whole batches within it *)
  let fsb = Mem.create () in
  let db4 = fresh_db () in
  let wal4 = Wal.attach ~storage:(Mem.storage fsb) db4 log_path in
  let e4 = new_employee db4 ~salary:0. in
  for i = 1 to 9 do
    Db.set db4 e4 "salary" (Value.Float (float_of_int i))
  done;
  Wal.compact ~retention:(Wal.Keep_bytes 120) wal4 ~snapshot:snap_path;
  let len = String.length (Mem.durable fsb log_path) in
  Alcotest.(check bool) "within the byte budget" true
    (len <= String.length "SENTINELWAL 2\n" + 120);
  Wal.detach wal4;
  let db5, _ = mem_recover fsb in
  Alcotest.(check bool) "budget retention states equal" true
    (snapshot db4 = snapshot db5)

let test_stale_delta_ignored () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = fresh_db () in
  let wal = Wal.attach ~storage db log_path in
  let e = new_employee db ~salary:1. in
  Wal.checkpoint wal ~snapshot:snap_path;
  Db.set db e "salary" (Value.Float 2.);
  Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path;
  (* a compaction folds the delta away... *)
  let stale = Mem.durable fs (snap_path ^ ".delta-1") in
  Wal.compact wal ~snapshot:snap_path;
  Db.set db e "salary" (Value.Float 3.);
  Wal.detach wal;
  (* ...but a crashed one could leave the old file behind *)
  Mem.set_file fs (snap_path ^ ".delta-1") stale;
  let db2, r = mem_recover fs in
  Alcotest.(check int) "stale chain element rejected" 0 r.Wal.r_deltas_applied;
  Alcotest.check value "state correct despite the leftover" (Value.Float 3.)
    (Db.get db2 e "salary");
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2)

let test_system_durability_wrappers () =
  let fs = Mem.create () in
  let storage = Mem.storage fs in
  let db = employee_db () in
  let sys = System.create db in
  let _wal =
    System.attach_wal ~storage
      ~group_commit:{ Oodb.Wal.max_batch = 8; max_wait_us = max_int }
      sys log_path
  in
  let e = new_employee db ~salary:1. in
  System.sync_wal sys;
  System.checkpoint sys ~snapshot:snap_path;
  Db.set db e "salary" (Value.Float 2.);
  System.checkpoint ~mode:`Delta sys ~snapshot:snap_path;
  Db.set db e "salary" (Value.Float 3.);
  System.compact_wal ~retention:Oodb.Wal.Keep_none sys ~snapshot:snap_path;
  let s = System.stats sys in
  Alcotest.(check bool) "wal_bytes surfaced" true (s.System.wal_bytes > 0);
  Alcotest.(check bool) "snapshot_bytes surfaced" true
    (s.System.snapshot_bytes > 0);
  (* each durability point (sync, delta checkpoint, compact) sealed the
     group that was open when it ran *)
  Alcotest.(check int) "group seals surfaced" 3 s.System.group_commit_batches;
  Alcotest.(check int) "delta checkpoints surfaced" 1 s.System.delta_checkpoints;
  System.detach_wal sys;
  Alcotest.(check bool) "journal released" true (System.wal sys = None);
  let db2, r = mem_recover fs in
  Alcotest.(check bool) "base loaded" true r.Wal.r_snapshot_loaded;
  Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2)

let suite =
  [
    test "autocommit logging" test_autocommit_logging;
    test "committed transaction replayed" test_committed_txn_replayed;
    test "aborted transaction not logged" test_aborted_txn_not_logged;
    test "inner abort, outer commit" test_inner_abort_partial;
    test "subscriptions and indexes replayed" test_subscriptions_and_indexes_replayed;
    test "torn tail ignored" test_torn_tail_ignored;
    test "checkpoint truncates" test_checkpoint_truncates;
    test "rule abort keeps log clean" test_rule_abort_keeps_log_clean;
    test "attach misuse" test_attach_misuse;
    test "missing log is empty" test_missing_log_is_empty;
    test "attach validates magic" test_attach_validates_magic;
    test "v1 logs stay readable" test_v1_log_compatible;
    test "bit-flipped tail discarded" test_bitflip_tail_discarded;
    test "counters move only after durable writes"
      test_counters_only_after_durable_write;
    test "nested: inner abort inside outer commit"
      test_nested_inner_abort_outer_commit;
    test "nested: inner commit inside outer abort"
      test_nested_inner_commit_outer_abort;
    test "nested: autocommit interleaved" test_autocommit_interleaved_with_nested;
    test "system stats mirror recovery counters"
      test_sys_stats_mirror_recovery_counters;
    test "group commit coalesces" test_group_commit_coalesces;
    test "group commit: sync seals" test_group_commit_sync_seals;
    test "group commit: crash loses whole group"
      test_group_commit_crash_loses_whole_group;
    test "group commit: window expiry" test_group_commit_window_expiry;
    test "delta checkpoint and recover" test_delta_checkpoint_and_recover;
    test "delta covers deletes and subscriptions"
      test_delta_covers_deletes_and_subscriptions;
    test "compact truncates and folds" test_compact_truncates_and_folds;
    test "compact retention policies" test_compact_retention;
    test "stale delta ignored" test_stale_delta_ignored;
    test "system durability wrappers" test_system_durability_wrappers;
    prop_replay_equals_original;
  ]
