open Helpers
module Wal = Oodb.Wal
module Persist = Oodb.Persist

let with_tmp f =
  let path = Filename.temp_file "sentinel_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let fresh_db () =
  let db = employee_db () in
  let _sys = System.create db in
  db

let snapshot db =
  List.concat_map
    (fun cls ->
      List.map
        (fun o -> (Oid.to_int o, cls, Db.attrs db o, Db.consumers_of db o))
        (Db.extent db ~deep:false cls))
    (List.sort compare (Db.classes db))

let recover path =
  let db = fresh_db () in
  let applied = Wal.replay db path in
  (db, applied)

let test_autocommit_logging () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~name:"ann" ~salary:5. in
      Db.set db e "salary" (Value.Float 10.);
      let e2 = new_employee db in
      Db.delete_object db e2;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "four autocommit batches" 4 applied;
      Alcotest.(check bool) "object restored" true (Db.exists db2 e);
      Alcotest.check value "attr restored" (Value.Float 10.) (Db.get db2 e "salary");
      Alcotest.(check bool) "deleted stays deleted" false (Db.exists db2 e2);
      Alcotest.(check bool) "full state equal" true (snapshot db = snapshot db2))

let test_committed_txn_replayed () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      Transaction.begin_ db;
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Transaction.commit db;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "one batch" 1 applied;
      Alcotest.check value "committed state" (Value.Float 2.) (Db.get db2 e "salary"))

let test_aborted_txn_not_logged () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let keeper = new_employee db ~salary:1. in
      Transaction.begin_ db;
      ignore (new_employee db);
      Db.set db keeper "salary" (Value.Float 99.);
      Transaction.abort db;
      (* OIDs burned by the abort must not break later replay *)
      let after = new_employee db ~salary:7. in
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.check value "abort invisible" (Value.Float 1.)
        (Db.get db2 keeper "salary");
      Alcotest.(check bool) "post-abort object restored with same oid" true
        (Db.exists db2 after);
      Alcotest.check value "its attr" (Value.Float 7.) (Db.get db2 after "salary");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_inner_abort_partial () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 2.);
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 3.);
      Transaction.abort db; (* inner only *)
      Transaction.begin_ db;
      Db.set db e "income" (Value.Float 4.);
      Transaction.commit db; (* inner commit *)
      Transaction.commit db;
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.check value "outer write survived" (Value.Float 2.)
        (Db.get db2 e "salary");
      Alcotest.check value "inner-committed write survived" (Value.Float 4.)
        (Db.get db2 e "income");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_subscriptions_and_indexes_replayed () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let sys = System.create (Db.create ()) in
      ignore sys;
      let wal = Wal.attach db path in
      let e = new_employee db in
      let consumer = new_employee db in
      Db.subscribe db ~reactive:e ~consumer;
      Db.subscribe_class db ~cls:"manager" ~consumer;
      Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"salary" ();
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.(check (list oid)) "instance sub" [ consumer ]
        (Db.consumers_of db2 e);
      Alcotest.(check (list oid)) "class sub" [ consumer ]
        (Db.class_consumers_of db2 "manager");
      Alcotest.(check bool) "ordered index back" true
        (Db.index_kind db2 ~cls:"employee" ~attr:"salary" = Some `Ordered))

let test_torn_tail_ignored () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Wal.detach wal;
      (* simulate a crash mid-batch: append an unterminated batch *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "B\ns 1 salary f:0x1.8p1\n"; (* no E *)
      close_out oc;
      let db2, applied = recover path in
      Alcotest.(check int) "only complete batches" 2 applied;
      Alcotest.check value "torn write discarded" (Value.Float 2.)
        (Db.get db2 e "salary"))

let test_checkpoint_truncates () =
  with_tmp (fun wal_path ->
      with_tmp (fun snap_path ->
          let db = fresh_db () in
          let wal = Wal.attach db wal_path in
          let e = new_employee db ~salary:1. in
          Wal.checkpoint wal ~snapshot:snap_path;
          (* post-checkpoint activity lands in the fresh log *)
          Db.set db e "salary" (Value.Float 5.);
          Wal.detach wal;
          (* recovery: snapshot + log *)
          let db2 = fresh_db () in
          Oodb.Persist.load db2 snap_path;
          let applied = Wal.replay db2 wal_path in
          Alcotest.(check int) "only the post-checkpoint batch" 1 applied;
          Alcotest.check value "final state" (Value.Float 5.)
            (Db.get db2 e "salary")))

let test_rule_abort_keeps_log_clean () =
  with_tmp (fun path ->
      (* a rule that aborts the transaction: the WAL must contain nothing
         from the aborted attempt *)
      let db = employee_db () in
      let sys = System.create db in
      let e = new_employee db ~salary:10. in
      ignore
        (System.create_rule sys ~monitor:[ e ]
           ~event:(Expr.eom ~cls:"employee" "set_salary")
           ~condition:"true" ~action:"abort" ());
      let wal = Wal.attach db path in
      (match
         Transaction.atomically db (fun () ->
             ignore (Db.send db e "set_salary" [ Value.Float 999. ]))
       with
      | Ok () -> Alcotest.fail "expected abort"
      | Error (Errors.Rule_abort _) -> ()
      | Error exn -> raise exn);
      Alcotest.(check int) "nothing written" 0 (Wal.batches_written wal);
      Wal.detach wal)

let test_attach_misuse () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      check_raises_any "double attach" (fun () -> ignore (Wal.attach db path));
      Wal.detach wal;
      Wal.detach wal; (* idempotent *)
      Transaction.begin_ db;
      check_raises_any "attach mid-txn" (fun () -> ignore (Wal.attach db path));
      Transaction.abort db)

let test_missing_log_is_empty () =
  let db = fresh_db () in
  Alcotest.(check int) "no file, no batches" 0
    (Wal.replay db "/nonexistent/definitely_missing.wal")

let test_attach_validates_magic () =
  with_tmp (fun bad ->
      with_tmp (fun good ->
          Out_channel.with_open_bin bad (fun oc ->
              Out_channel.output_string oc "NOT A WAL FILE\njunk\n");
          let db = fresh_db () in
          (match Wal.attach db bad with
          | exception Errors.Parse_error _ -> ()
          | _ -> Alcotest.fail "expected Parse_error on foreign magic");
          (* the failed attach must not leave a journal installed *)
          let wal = Wal.attach db good in
          Wal.detach wal))

let test_v1_log_compatible () =
  with_tmp (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            "SENTINELWAL 1\nB\nc 1 employee name=s:a salary=f:0x1p0\nE\nB\ns 1 salary f:0x1p3\nE\n");
      let db2, applied = recover path in
      Alcotest.(check int) "both v1 batches" 2 applied;
      Alcotest.check value "v1 state" (Value.Float 8.)
        (Db.get db2 (Oid.of_int 1) "salary");
      (* appending to a v1 log keeps it replayable end to end *)
      let wal = Wal.attach db2 path in
      Db.set db2 (Oid.of_int 1) "salary" (Value.Float 9.);
      Wal.detach wal;
      let db3, applied3 = recover path in
      Alcotest.(check int) "appended batch replays" 3 applied3;
      Alcotest.check value "appended state" (Value.Float 9.)
        (Db.get db3 (Oid.of_int 1) "salary"))

let test_bitflip_tail_discarded () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Db.set db e "salary" (Value.Float 3.);
      Wal.detach wal;
      (* flip a byte inside the last batch's payload *)
      let data = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string data in
      let i = String.rindex data 'f' in
      Bytes.set b i 'g';
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      let db2 = fresh_db () in
      let applied = Wal.replay db2 path in
      Alcotest.(check int) "stops before the corrupt batch" 2 applied;
      Alcotest.check value "state at last good batch" (Value.Float 2.)
        (Db.get db2 e "salary");
      Alcotest.(check int) "checksum failure counted" 1
        (Db.stats db2).Oodb.Types.wal_checksum_failures;
      Alcotest.(check int) "discard counted" 1
        (Db.stats db2).Oodb.Types.wal_batches_discarded)

let test_counters_only_after_durable_write () =
  let fs = Oodb.Storage.Mem.create () in
  let storage = Oodb.Storage.Mem.storage fs in
  let db = fresh_db () in
  let wal = Wal.attach ~storage db "log.wal" in
  (* exhaust the bounded retry: the write fails for good *)
  Oodb.Storage.Mem.fail_writes fs 99;
  (match new_employee db with
  | exception Errors.Io_error _ -> ()
  | _ -> Alcotest.fail "expected Io_error once retries are exhausted");
  Alcotest.(check int) "no batch counted" 0 (Wal.batches_written wal);
  Alcotest.(check int) "no entries counted" 0 (Wal.entries_written wal);
  Oodb.Storage.Mem.clear_faults fs;
  (* a transient fault within the retry budget recovers and counts once *)
  Oodb.Storage.Mem.fail_writes fs 2;
  let e = new_employee db ~salary:3. in
  Alcotest.(check int) "one durable batch" 1 (Wal.batches_written wal);
  Wal.detach wal;
  (* a detached journal never moves its counters again *)
  ignore (new_employee db);
  Alcotest.(check int) "frozen after detach" 1 (Wal.batches_written wal);
  let db2 = fresh_db () in
  let applied = Wal.replay ~storage db2 "log.wal" in
  Alcotest.(check int) "the durable batch replays" 1 applied;
  Alcotest.check value "its state" (Value.Float 3.) (Db.get db2 e "salary")

let test_nested_inner_abort_outer_commit () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 2.);
      Transaction.begin_ db;
      ignore (new_employee db ~name:"ghost");
      Db.set db e "salary" (Value.Float 3.);
      Transaction.abort db;
      Db.set db e "income" (Value.Float 4.);
      Transaction.commit db;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "create + the outer batch" 2 applied;
      Oodb.Verify.check_exn ~quiescent:true db2;
      Alcotest.check value "outer write survived" (Value.Float 2.)
        (Db.get db2 e "salary");
      Alcotest.check value "post-abort write survived" (Value.Float 4.)
        (Db.get db2 e "income");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_nested_inner_commit_outer_abort () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 5.);
      Transaction.commit db; (* folds into the doomed outer transaction *)
      Transaction.abort db;
      Wal.detach wal;
      Alcotest.(check int) "only the create hit the log" 1
        (Wal.batches_written wal);
      let db2, applied = recover path in
      Alcotest.(check int) "one batch" 1 applied;
      Oodb.Verify.check_exn ~quiescent:true db2;
      Alcotest.check value "inner commit dropped with the outer abort"
        (Value.Float 1.) (Db.get db2 e "salary");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_autocommit_interleaved_with_nested () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 2.);
      Transaction.begin_ db;
      Db.set db e "income" (Value.Float 3.);
      Transaction.commit db;
      Transaction.commit db;
      Db.set db e "salary" (Value.Float 4.); (* autocommit between txns *)
      Transaction.begin_ db;
      Db.set db e "income" (Value.Float 9.);
      Transaction.abort db;
      Db.set db e "income" (Value.Float 5.); (* autocommit after abort *)
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "create, outer, two autocommits" 4 applied;
      Oodb.Verify.check_exn ~quiescent:true db2;
      Alcotest.check value "final salary" (Value.Float 4.)
        (Db.get db2 e "salary");
      Alcotest.check value "final income" (Value.Float 5.)
        (Db.get db2 e "income");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_sys_stats_mirror_recovery_counters () =
  with_tmp (fun path ->
      let src = fresh_db () in
      let wal = Wal.attach src path in
      ignore (new_employee src);
      Wal.detach wal;
      let db = employee_db () in
      let sys = System.create db in
      let applied = Wal.replay db path in
      Alcotest.(check int) "applied" 1 applied;
      let s = System.stats sys in
      Alcotest.(check int) "mirrored into sys stats" 1
        s.System.wal_batches_replayed;
      Alcotest.(check bool) "fsyncs counted on the source store" true
        ((Db.stats src).Oodb.Types.wal_fsyncs > 0))

(* Property: for random committed workloads, replaying the WAL into a fresh
   database reproduces the exact observable state. *)
let prop_replay_equals_original =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wal replay reproduces state" ~count:60
       QCheck2.Gen.(
         list_size (int_bound 40)
           (oneof
              [
                map (fun (i, v) -> `Set (i, v)) (pair (int_bound 6) small_signed_int);
                return `Create;
                map (fun i -> `Delete i) (int_bound 6);
                map (fun b -> `Txn b) bool; (* true = commit, false = abort *)
              ]))
       (fun ops ->
         with_tmp (fun path ->
             let db = fresh_db () in
             let wal = Wal.attach db path in
             let created = ref [] in
             let base = Array.init 7 (fun _ -> new_employee db) in
             Array.iter (fun o -> created := o :: !created) base;
             let apply op =
               try
                 match op with
                 | `Set (i, v) ->
                   Db.set db base.(i) "salary" (Value.Float (float_of_int v))
                 | `Create -> created := new_employee db :: !created
                 | `Delete i -> Db.delete_object db base.(i)
                 | `Txn _ -> ()
               with Errors.No_such_object _ | Errors.Dead_object _ -> ()
             in
             (* interleave flat ops and short transactions *)
             List.iter
               (fun op ->
                 match op with
                 | `Txn commit ->
                   Transaction.begin_ db;
                   apply `Create;
                   if commit then Transaction.commit db else Transaction.abort db
                 | other -> apply other)
               ops;
             Wal.detach wal;
             let db2, _ = recover path in
             snapshot db = snapshot db2)))

let suite =
  [
    test "autocommit logging" test_autocommit_logging;
    test "committed transaction replayed" test_committed_txn_replayed;
    test "aborted transaction not logged" test_aborted_txn_not_logged;
    test "inner abort, outer commit" test_inner_abort_partial;
    test "subscriptions and indexes replayed" test_subscriptions_and_indexes_replayed;
    test "torn tail ignored" test_torn_tail_ignored;
    test "checkpoint truncates" test_checkpoint_truncates;
    test "rule abort keeps log clean" test_rule_abort_keeps_log_clean;
    test "attach misuse" test_attach_misuse;
    test "missing log is empty" test_missing_log_is_empty;
    test "attach validates magic" test_attach_validates_magic;
    test "v1 logs stay readable" test_v1_log_compatible;
    test "bit-flipped tail discarded" test_bitflip_tail_discarded;
    test "counters move only after durable writes"
      test_counters_only_after_durable_write;
    test "nested: inner abort inside outer commit"
      test_nested_inner_abort_outer_commit;
    test "nested: inner commit inside outer abort"
      test_nested_inner_commit_outer_abort;
    test "nested: autocommit interleaved" test_autocommit_interleaved_with_nested;
    test "system stats mirror recovery counters"
      test_sys_stats_mirror_recovery_counters;
    prop_replay_equals_original;
  ]
